// Wire protocol between the Feature Monitor Client and the server side
// (legacy one-client FMS or the f2pm_serve prediction service): fixed
// little-endian framed messages.
//
//   [u32 magic][u32 type][payload]
//   type kDatapoint:    payload = f64 tgen + 14 x f64 feature values
//   type kFailEvent:    payload = f64 fail_time (the run crashed; restart)
//   type kBye:          payload empty (client is done)
//   type kHello:        payload = u32 proto_version + u32 len + len id bytes
//   type kPrediction:   payload = f64 window_end + f64 rttf + u32 alarm +
//                                 u32 model_version   (server -> client)
//   type kStatsRequest: payload empty (client asks for a metrics dump)
//   type kStatsReply:   payload = u32 len + len bytes of Prometheus text
//                                 exposition   (server -> client)
//
// Hello is optional and versioned: legacy clients that never send it keep
// working (they are treated as ingest-only and receive no predictions).
//
// Two decode paths share one framing implementation. The zero-copy
// FrameDecoder::next_view() hands out FrameViews into the decoder's own
// buffer — no payload copy, used by the serve hot path — and next()
// materializes an owned Frame variant from the same view for the blocking
// clients and anything that wants to keep the frame around.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "data/datapoint.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

inline constexpr std::uint32_t kProtocolMagic = 0x46'32'50'4D;  // "F2PM"

/// Highest Hello version this build understands.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on the Hello client-id length; longer ids are a protocol
/// violation (they would let a hostile client demand unbounded buffers).
inline constexpr std::size_t kMaxClientIdBytes = 256;

/// Hard cap on a StatsReply exposition body, same rationale.
inline constexpr std::size_t kMaxStatsBytes = 1u << 20;

enum class FrameType : std::uint32_t {
  kDatapoint = 1,
  kFailEvent = 2,
  kBye = 3,
  kHello = 4,
  kPrediction = 5,
  kStatsRequest = 6,
  kStatsReply = 7,
};

// Wire sizes, shared by the encoder, the decoder and the tests.
inline constexpr std::size_t kFrameHeaderBytes = 2 * sizeof(std::uint32_t);
inline constexpr std::size_t kDatapointPayloadBytes =
    (1 + data::kFeatureCount) * sizeof(double);
inline constexpr std::size_t kFailEventPayloadBytes = sizeof(double);
inline constexpr std::size_t kHelloFixedPayloadBytes =
    2 * sizeof(std::uint32_t);
inline constexpr std::size_t kPredictionPayloadBytes =
    2 * sizeof(double) + 2 * sizeof(std::uint32_t);
inline constexpr std::size_t kStatsReplyFixedPayloadBytes =
    sizeof(std::uint32_t);

/// A fail-event frame body.
struct FailEvent {
  double fail_time = 0.0;
};

/// A bye frame body.
struct Bye {};

/// Session-opening handshake (client -> server).
struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string client_id;
};

/// An RTTF prediction reply (server -> client), emitted when an
/// aggregation window closes on the server side.
struct Prediction {
  double window_end = 0.0;  ///< Elapsed time the prediction refers to.
  double rttf = 0.0;        ///< Predicted remaining time to failure (s).
  bool alarm = false;       ///< Rejuvenation advisor says "act now".
  std::uint32_t model_version = 0;  ///< ModelStore version that scored it.
};

/// Client -> server: dump the service's metrics registry.
struct StatsRequest {};

/// Server -> client: the metrics registry in Prometheus text form — the
/// same bytes the HTTP scrape endpoint serves.
struct StatsReply {
  std::string text;
};

/// Any received frame, as an owned value (see FrameDecoder::next()).
using Frame = std::variant<data::RawDatapoint, FailEvent, Bye, Hello,
                           Prediction, StatsRequest, StatsReply>;

/// Protocol violation: bad magic, unknown frame type or an oversized
/// variable-length payload. Distinct from truncation (see FrameDecoder).
class ProtocolError : public std::runtime_error {
 public:
  enum class Kind { kBadMagic, kUnknownType, kOversized };

  ProtocolError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// One validated frame, viewed in place inside the decoder's buffer — no
/// payload copy was made. A view is valid only until the next call on the
/// decoder that produced it (feed / next_view / next / reset); to keep a
/// payload past that, copy it out ("detach") first — e.g. the serve tier
/// copies a datapoint view straight into the session inbox, the single
/// copy on its hot path.
///
/// All field accessors read via memcpy: payloads are NOT 8-byte aligned
/// in general (a variable-length Hello or StatsReply shifts every later
/// frame in the stream), so pointer-casting into them would be UB.
class FrameView {
 public:
  FrameView(FrameType type, const std::uint8_t* payload, std::size_t size)
      : type_(type), payload_(payload), size_(size) {}

  [[nodiscard]] FrameType type() const noexcept { return type_; }
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return {payload_, size_};
  }

  /// kDatapoint: copies the payload into `out` — the detach point.
  void datapoint(data::RawDatapoint& out) const {
    assert(type_ == FrameType::kDatapoint);
    out.tgen = read_f64(0);
    std::memcpy(out.values.data(), payload_ + sizeof(double),
                data::kFeatureCount * sizeof(double));
  }
  /// kFailEvent.
  [[nodiscard]] double fail_time() const {
    assert(type_ == FrameType::kFailEvent);
    return read_f64(0);
  }
  /// kHello.
  [[nodiscard]] std::uint32_t hello_version() const {
    assert(type_ == FrameType::kHello);
    return read_u32(0);
  }
  /// kHello: the id bytes in place (length already validated).
  [[nodiscard]] std::string_view hello_client_id() const {
    assert(type_ == FrameType::kHello);
    return {reinterpret_cast<const char*>(payload_ + kHelloFixedPayloadBytes),
            size_ - kHelloFixedPayloadBytes};
  }
  /// kPrediction (fits in a return value; nothing to view in place).
  [[nodiscard]] Prediction prediction() const {
    assert(type_ == FrameType::kPrediction);
    Prediction out;
    out.window_end = read_f64(0);
    out.rttf = read_f64(8);
    out.alarm = read_u32(16) != 0;
    out.model_version = read_u32(20);
    return out;
  }
  /// kStatsReply: the exposition text in place.
  [[nodiscard]] std::string_view stats_text() const {
    assert(type_ == FrameType::kStatsReply);
    return {
        reinterpret_cast<const char*>(payload_ + kStatsReplyFixedPayloadBytes),
        size_ - kStatsReplyFixedPayloadBytes};
  }

  /// Raw little-endian field readers (offsets into the payload).
  [[nodiscard]] double read_f64(std::size_t offset) const {
    assert(offset + sizeof(double) <= size_);
    double value;
    std::memcpy(&value, payload_ + offset, sizeof(value));
    return value;
  }
  [[nodiscard]] std::uint32_t read_u32(std::size_t offset) const {
    assert(offset + sizeof(std::uint32_t) <= size_);
    std::uint32_t value;
    std::memcpy(&value, payload_ + offset, sizeof(value));
    return value;
  }

 private:
  FrameType type_;
  const std::uint8_t* payload_;
  std::size_t size_;
};

namespace detail {
/// Metric hook behind the templated encoder (frames_out / bytes_out).
void note_frame_encoded(std::size_t bytes);
}  // namespace detail

/// Appends the serialized form of a frame to any contiguous byte buffer
/// (std::vector or std::pmr::vector — the serve tier encodes straight
/// into arena-backed outbound scratch). Each encode is scatter-free: one
/// resize, then direct writes into the grown tail, so a frame costs one
/// range check instead of one per field.
class FrameEncoder {
 public:
  template <class Buffer>
  static void encode_datapoint(Buffer& out,
                               const data::RawDatapoint& datapoint) {
    std::uint8_t* w = grow(out, kDatapointPayloadBytes);
    w = put_header(w, FrameType::kDatapoint);
    w = put_f64(w, datapoint.tgen);
    std::memcpy(w, datapoint.values.data(),
                data::kFeatureCount * sizeof(double));
    detail::note_frame_encoded(kFrameHeaderBytes + kDatapointPayloadBytes);
  }

  template <class Buffer>
  static void encode_fail_event(Buffer& out, double fail_time) {
    std::uint8_t* w = grow(out, kFailEventPayloadBytes);
    w = put_header(w, FrameType::kFailEvent);
    put_f64(w, fail_time);
    detail::note_frame_encoded(kFrameHeaderBytes + kFailEventPayloadBytes);
  }

  template <class Buffer>
  static void encode_bye(Buffer& out) {
    put_header(grow(out, 0), FrameType::kBye);
    detail::note_frame_encoded(kFrameHeaderBytes);
  }

  /// Throws std::invalid_argument when client_id exceeds kMaxClientIdBytes.
  template <class Buffer>
  static void encode_hello(Buffer& out, const Hello& hello) {
    if (hello.client_id.size() > kMaxClientIdBytes) {
      throw std::invalid_argument("protocol: client_id exceeds " +
                                  std::to_string(kMaxClientIdBytes) +
                                  " bytes");
    }
    const std::size_t payload =
        kHelloFixedPayloadBytes + hello.client_id.size();
    std::uint8_t* w = grow(out, payload);
    w = put_header(w, FrameType::kHello);
    w = put_u32(w, hello.version);
    w = put_u32(w, static_cast<std::uint32_t>(hello.client_id.size()));
    std::memcpy(w, hello.client_id.data(), hello.client_id.size());
    detail::note_frame_encoded(kFrameHeaderBytes + payload);
  }

  template <class Buffer>
  static void encode_prediction(Buffer& out, const Prediction& prediction) {
    std::uint8_t* w = grow(out, kPredictionPayloadBytes);
    w = put_header(w, FrameType::kPrediction);
    w = put_f64(w, prediction.window_end);
    w = put_f64(w, prediction.rttf);
    w = put_u32(w, prediction.alarm ? 1u : 0u);
    put_u32(w, prediction.model_version);
    detail::note_frame_encoded(kFrameHeaderBytes + kPredictionPayloadBytes);
  }

  template <class Buffer>
  static void encode_stats_request(Buffer& out) {
    put_header(grow(out, 0), FrameType::kStatsRequest);
    detail::note_frame_encoded(kFrameHeaderBytes);
  }

  /// Throws std::invalid_argument when the text exceeds kMaxStatsBytes.
  template <class Buffer>
  static void encode_stats_reply(Buffer& out, const StatsReply& reply) {
    if (reply.text.size() > kMaxStatsBytes) {
      throw std::invalid_argument("protocol: stats reply exceeds " +
                                  std::to_string(kMaxStatsBytes) + " bytes");
    }
    const std::size_t payload =
        kStatsReplyFixedPayloadBytes + reply.text.size();
    std::uint8_t* w = grow(out, payload);
    w = put_header(w, FrameType::kStatsReply);
    w = put_u32(w, static_cast<std::uint32_t>(reply.text.size()));
    std::memcpy(w, reply.text.data(), reply.text.size());
    detail::note_frame_encoded(kFrameHeaderBytes + payload);
  }

 private:
  /// Grows `out` by one frame (header + payload) in a single resize and
  /// returns the write cursor at the frame's first byte.
  template <class Buffer>
  static std::uint8_t* grow(Buffer& out, std::size_t payload) {
    const std::size_t at = out.size();
    out.resize(at + kFrameHeaderBytes + payload);
    return out.data() + at;
  }
  static std::uint8_t* put_u32(std::uint8_t* w, std::uint32_t value) {
    std::memcpy(w, &value, sizeof(value));
    return w + sizeof(value);
  }
  static std::uint8_t* put_f64(std::uint8_t* w, double value) {
    std::memcpy(w, &value, sizeof(value));
    return w + sizeof(value);
  }
  static std::uint8_t* put_header(std::uint8_t* w, FrameType type) {
    w = put_u32(w, kProtocolMagic);
    return put_u32(w, static_cast<std::uint32_t>(type));
  }
};

/// Byte-incremental frame parser: feed() arbitrary chunks (single bytes,
/// split frames, coalesced frames), pop complete frames with next_view()
/// (zero-copy) or next() (owned). Throws ProtocolError on violations;
/// after a throw the decoder is poisoned and the connection should be
/// dropped.
///
/// Buffer compaction (moving unconsumed bytes down over the consumed
/// prefix) happens only inside feed() and reset() — never inside
/// next_view() — so a view stays valid while its frame's successors are
/// being sized, and across a backpressure pause: frames left buffered by
/// a paused reader sit untouched until the reader resumes and either
/// views them or feeds more bytes.
class FrameDecoder {
 public:
  /// Appends raw bytes from the wire; compacts the consumed prefix first
  /// (any previously returned view is invalidated).
  void feed(const void* data, std::size_t size);

  /// Returns a zero-copy view of the next complete frame, or nullopt when
  /// more bytes are needed. The view is valid until the next feed /
  /// next_view / next / reset call. Throws ProtocolError on bad magic /
  /// unknown type / oversized payloads.
  std::optional<FrameView> next_view();

  /// Returns the next complete frame as an owned value (a materialized
  /// copy of what next_view() yields), or nullopt when more bytes are
  /// needed. Same errors as next_view().
  std::optional<Frame> next();

  /// True when buffered bytes form an incomplete frame — at EOF this is
  /// the difference between a clean close (between frames) and a
  /// mid-frame truncation.
  [[nodiscard]] bool mid_frame() const noexcept {
    return pos_ < buffer_.size();
  }

  /// How many more bytes are certainly required before next() can make
  /// progress (>= 1 whenever next() returned nullopt). Blocking callers
  /// use this to read exactly one frame without over-reading.
  [[nodiscard]] std::size_t bytes_needed() const;

  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - pos_;
  }

  /// Drops all buffered bytes (e.g. after a per-run reconnect).
  void reset();

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< Consumed prefix; compacted in feed().
};

/// Serializes and sends one datapoint frame.
void send_datapoint(TcpStream& stream, const data::RawDatapoint& datapoint);

/// Serializes and sends a fail-event frame.
void send_fail_event(TcpStream& stream, double fail_time);

/// Serializes and sends a bye frame.
void send_bye(TcpStream& stream);

/// Serializes and sends a hello frame.
void send_hello(TcpStream& stream, const Hello& hello);

/// Serializes and sends a prediction frame.
void send_prediction(TcpStream& stream, const Prediction& prediction);

/// Serializes and sends a stats-request frame.
void send_stats_request(TcpStream& stream);

/// Serializes and sends a stats-reply frame.
void send_stats_reply(TcpStream& stream, const StatsReply& reply);

/// Receives the next frame, blocking. Returns nullopt on clean EOF at a
/// frame boundary; throws ProtocolError on protocol violations and
/// std::runtime_error on mid-frame truncation. `decoder` carries partial
/// state across calls, so mixing this with non-blocking reads is safe.
std::optional<Frame> receive_frame(TcpStream& stream, FrameDecoder& decoder);

/// Convenience overload with a call-local decoder (reads exactly one
/// frame, never buffering past it).
std::optional<Frame> receive_frame(TcpStream& stream);

}  // namespace f2pm::net
