// Wire protocol between the Feature Monitor Client and Server: fixed-size
// little-endian frames, one per datapoint, plus a run-boundary marker.
//
//   [u32 magic][u32 type][payload]
//   type kDatapoint: payload = f64 tgen + 14 x f64 feature values
//   type kFailEvent: payload = f64 fail_time (the run crashed; restart)
//   type kBye:       payload empty (client is done)
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "data/datapoint.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

inline constexpr std::uint32_t kProtocolMagic = 0x46'32'50'4D;  // "F2PM"

enum class FrameType : std::uint32_t {
  kDatapoint = 1,
  kFailEvent = 2,
  kBye = 3,
};

/// A fail-event frame body.
struct FailEvent {
  double fail_time = 0.0;
};

/// A bye frame body.
struct Bye {};

/// Any received frame.
using Frame = std::variant<data::RawDatapoint, FailEvent, Bye>;

/// Serializes and sends one datapoint frame.
void send_datapoint(TcpStream& stream, const data::RawDatapoint& datapoint);

/// Serializes and sends a fail-event frame.
void send_fail_event(TcpStream& stream, double fail_time);

/// Serializes and sends a bye frame.
void send_bye(TcpStream& stream);

/// Receives the next frame. Returns nullopt on clean EOF; throws
/// std::runtime_error on protocol violations (bad magic / unknown type /
/// truncation).
std::optional<Frame> receive_frame(TcpStream& stream);

}  // namespace f2pm::net
