#include "net/poller.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define F2PM_HAVE_EPOLL 1
#define F2PM_HAVE_EVENTFD 1
#endif

namespace f2pm::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Tracks how much of a wait timeout is left across EINTR retries:
/// -1 (infinite) stays -1; finite budgets shrink with the clock so a
/// signal storm cannot extend the wait.
class WaitBudget {
 public:
  explicit WaitBudget(int timeout_ms)
      : infinite_(timeout_ms < 0),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms)) {
  }

  [[nodiscard]] int remaining_ms() const {
    if (infinite_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }

 private:
  bool infinite_;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

Wakeup::Wakeup() {
#if defined(F2PM_HAVE_EVENTFD)
  read_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (read_fd_ >= 0) {
    write_fd_ = read_fd_;
    return;
  }
  // eventfd exhausted/unavailable: fall through to the pipe pair.
#endif
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) throw_errno("Wakeup: pipe");
  for (int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    const int fdflags = ::fcntl(fd, F_GETFD, 0);
    if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

Wakeup::~Wakeup() {
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  if (read_fd_ >= 0) ::close(read_fd_);
}

void Wakeup::notify() noexcept {
  if (write_fd_ < 0) return;
  const std::uint64_t token = 1;
  // EAGAIN means the counter/pipe is already full — the wakeup is
  // guaranteed regardless; EINTR is retried once and then dropped for the
  // same reason.
  [[maybe_unused]] ssize_t n;
  do {
    n = ::write(write_fd_, &token,
                write_fd_ == read_fd_ ? sizeof(token) : 1);
  } while (n < 0 && errno == EINTR);
}

void Wakeup::drain() noexcept {
  if (read_fd_ < 0) return;
  std::uint64_t sink[32];
  while (::read(read_fd_, sink, sizeof(sink)) > 0) {
  }
}

Poller::Backend Poller::default_backend() noexcept {
#if defined(F2PM_HAVE_EPOLL)
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

Poller::Poller(Backend backend) : backend_(backend) {
#if defined(F2PM_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
  }
#else
  if (backend_ == Backend::kEpoll) {
    backend_ = Backend::kPoll;  // epoll is unavailable on this platform
  }
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Poller::add(int fd, bool want_read, bool want_write) {
  if (fd < 0) throw std::runtime_error("Poller::add: bad fd");
  if (interest_.count(fd) != 0) {
    throw std::runtime_error("Poller::add: fd already registered");
  }
#if defined(F2PM_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }
#endif
  interest_[fd] = Interest{want_read, want_write};
}

void Poller::modify(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) {
    throw std::runtime_error("Poller::modify: fd not registered");
  }
  if (it->second.read == want_read && it->second.write == want_write) return;
#if defined(F2PM_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(MOD)");
    }
  }
#endif
  it->second = Interest{want_read, want_write};
}

void Poller::remove(int fd) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return;
#if defined(F2PM_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    // Ignore errors: the fd may already be closed, which removed it.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  interest_.erase(it);
}

std::vector<Poller::Event> Poller::wait(int timeout_ms) {
  std::vector<Event> out;
  const WaitBudget budget(timeout_ms);
#if defined(F2PM_HAVE_EPOLL)
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    int n;
    // Retry interrupted waits with the remaining budget: a signal must not
    // surface as a spurious empty wakeup nor stretch the timeout.
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, budget.remaining_ms());
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("epoll_wait");
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & EPOLLIN) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return out;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd p{};
    p.fd = fd;
    p.events = static_cast<short>((want.read ? POLLIN : 0) |
                                  (want.write ? POLLOUT : 0));
    fds.push_back(p);
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), budget.remaining_ms());
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("poll");
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event ev;
    ev.fd = p.fd;
    ev.readable = (p.revents & POLLIN) != 0;
    ev.writable = (p.revents & POLLOUT) != 0;
    ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(ev);
  }
  return out;
}

}  // namespace f2pm::net
