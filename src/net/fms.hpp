// Feature Monitor Server (paper §III-E): accepts one FMC connection on a
// background thread and accumulates the received datapoints into a
// DataHistory, closing a run whenever a fail event arrives. The resulting
// history feeds straight into the F2PM pipeline.
#pragma once

#include <cstdint>
#include <mutex>
#include <thread>

#include "data/data_history.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

/// One-client FMS running on a background thread.
class FeatureMonitorServer {
 public:
  /// Binds loopback:port (0 = ephemeral) and starts the accept thread.
  explicit FeatureMonitorServer(std::uint16_t port = 0);
  FeatureMonitorServer(const FeatureMonitorServer&) = delete;
  FeatureMonitorServer& operator=(const FeatureMonitorServer&) = delete;
  ~FeatureMonitorServer();

  /// The bound port (hand this to the FMC).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Blocks until the client sent bye / disconnected, then returns the
  /// accumulated history. A trailing run without a fail event is kept as
  /// an unfailed run.
  data::DataHistory wait_and_take_history();

  /// Force-stops the server (unblocks accept; the thread exits).
  void stop();

 private:
  void serve();

  TcpListener listener_;
  std::thread thread_;
  std::mutex mutex_;
  data::DataHistory history_;
  data::Run current_run_;
  bool done_ = false;
};

}  // namespace f2pm::net
