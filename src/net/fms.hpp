// Feature Monitor Server (paper §III-E): accepts one FMC connection on a
// background thread and accumulates the received datapoints into a
// DataHistory, closing a run whenever a fail event arrives. The resulting
// history feeds straight into the F2PM pipeline.
//
// Since the f2pm_serve subsystem landed, this legacy one-client server is
// a thin wrapper over the same building blocks the multi-session
// PredictionService uses: a Poller-driven readiness loop (so stop() is a
// race-free self-pipe wakeup instead of closing a socket out from under a
// blocked accept()) and the byte-incremental FrameDecoder (one framing
// code path). Clients that open with a Hello frame are recognized and
// their id recorded; hello-less legacy clients keep working unchanged.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "data/data_history.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

/// One-client FMS running on a background thread.
class FeatureMonitorServer {
 public:
  /// Binds loopback:port (0 = ephemeral) and starts the serving thread.
  explicit FeatureMonitorServer(std::uint16_t port = 0);
  FeatureMonitorServer(const FeatureMonitorServer&) = delete;
  FeatureMonitorServer& operator=(const FeatureMonitorServer&) = delete;
  ~FeatureMonitorServer();

  /// The bound port (hand this to the FMC).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Blocks until the client sent bye / disconnected, then returns the
  /// accumulated history. A trailing run without a fail event is kept as
  /// an unfailed run.
  data::DataHistory wait_and_take_history();

  /// Force-stops the server: wakes the event loop via the self-pipe, so
  /// it is safe to call at any point (before, during or after an accept)
  /// and any number of times.
  void stop();

  /// The client id announced via Hello ("" for hello-less legacy clients).
  [[nodiscard]] std::string client_id() const;

 private:
  void serve();

  TcpListener listener_;
  Socket stop_rx_;  ///< Self-pipe read end, registered with the poller.
  Socket stop_tx_;  ///< Self-pipe write end; stop() writes one byte.
  std::thread thread_;
  mutable std::mutex mutex_;
  data::DataHistory history_;
  data::Run current_run_;
  std::string client_id_;
  bool done_ = false;
};

}  // namespace f2pm::net
