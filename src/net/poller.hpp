// Readiness multiplexer for the networked components: a thin wrapper over
// epoll (Linux) with a portable poll(2) fallback, selectable at runtime so
// both backends stay tested on any host. Single-threaded: one Poller is
// owned and driven by exactly one event-loop thread.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace f2pm::net {

/// Edge-free (level-triggered) readiness poller.
class Poller {
 public:
  enum class Backend { kEpoll, kPoll };

  /// kEpoll where available (Linux), kPoll otherwise.
  static Backend default_backend() noexcept;

  /// One readiness report. `error` covers EPOLLERR/EPOLLHUP/POLLNVAL;
  /// handlers should read the fd to surface the actual error/EOF.
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  explicit Poller(Backend backend = default_backend());
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;
  ~Poller();

  [[nodiscard]] Backend backend() const noexcept { return backend_; }
  [[nodiscard]] std::size_t size() const noexcept { return interest_.size(); }

  /// Registers `fd` with the given interest set. Throws std::runtime_error
  /// on failure or if the fd is already registered.
  void add(int fd, bool want_read, bool want_write);

  /// Updates the interest set of a registered fd.
  void modify(int fd, bool want_read, bool want_write);

  /// Deregisters a fd (no-op if it was never added).
  void remove(int fd);

  /// Blocks for up to `timeout_ms` (-1 = forever, 0 = poll) and returns the
  /// ready events. An empty result means the timeout elapsed.
  std::vector<Event> wait(int timeout_ms);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Backend backend_;
  int epoll_fd_ = -1;
  std::unordered_map<int, Interest> interest_;
};

}  // namespace f2pm::net
