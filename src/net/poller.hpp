// Readiness multiplexer for the networked components: a thin wrapper over
// epoll (Linux) with a portable poll(2) fallback, selectable at runtime so
// both backends stay tested on any host. Single-threaded: one Poller is
// owned and driven by exactly one event-loop thread.
//
// Wakeup is the cross-thread control primitive that pairs with it: any
// thread may notify() a Wakeup whose fd is registered with a Poller, and
// the owning loop returns from wait() immediately instead of sleeping out
// its timeout — the mechanism behind instant stop/drain/swap signalling.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace f2pm::net {

/// Edge-free cross-thread wakeup: an eventfd on Linux (one fd, one
/// counter) with a non-blocking self-pipe fallback elsewhere. Register
/// fd() read-interest with a Poller; notify() from any thread makes the
/// next (or current) wait() return; drain() consumes the pending tokens so
/// a level-triggered loop does not spin. notify() never blocks: a full
/// pipe/counter already guarantees the loop will wake.
class Wakeup {
 public:
  Wakeup();
  Wakeup(const Wakeup&) = delete;
  Wakeup& operator=(const Wakeup&) = delete;
  ~Wakeup();

  /// The readable descriptor to register with a Poller.
  [[nodiscard]] int fd() const noexcept { return read_fd_; }

  /// Makes the owning loop's wait() return. Thread-safe, non-blocking.
  void notify() noexcept;

  /// Consumes all queued notifications (loop thread, after readiness).
  void drain() noexcept;

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  ///< Equals read_fd_ for the eventfd backend.
};

/// Edge-free (level-triggered) readiness poller.
class Poller {
 public:
  enum class Backend { kEpoll, kPoll };

  /// kEpoll where available (Linux), kPoll otherwise.
  static Backend default_backend() noexcept;

  /// One readiness report. `error` covers EPOLLERR/EPOLLHUP/POLLNVAL;
  /// handlers should read the fd to surface the actual error/EOF.
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  explicit Poller(Backend backend = default_backend());
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;
  ~Poller();

  [[nodiscard]] Backend backend() const noexcept { return backend_; }
  [[nodiscard]] std::size_t size() const noexcept { return interest_.size(); }

  /// Registers `fd` with the given interest set. Throws std::runtime_error
  /// on failure or if the fd is already registered.
  void add(int fd, bool want_read, bool want_write);

  /// Updates the interest set of a registered fd.
  void modify(int fd, bool want_read, bool want_write);

  /// Deregisters a fd (no-op if it was never added).
  void remove(int fd);

  /// Blocks for up to `timeout_ms` (-1 = forever, 0 = poll) and returns the
  /// ready events. An empty result means the timeout elapsed.
  std::vector<Event> wait(int timeout_ms);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Backend backend_;
  int epoll_fd_ = -1;
  std::unordered_map<int, Interest> interest_;
};

}  // namespace f2pm::net
