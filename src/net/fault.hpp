// Deterministic fault injection for the serve/net stack.
//
// A FaultPlan describes the partial failures a transport should suffer —
// refused/delayed connects, mid-frame resets, short reads/writes, EAGAIN
// storms, silent stalls, accept-time drops — either as seeded rates or as
// an exact script ("lane 3's 57th write resets"). Installing a plan
// (ScopedFaultInjection) publishes a process-wide FaultInjector that the
// TcpStream/TcpListener I/O primitives consult on every operation; the
// FMC, FMS and f2pm_serve therefore all run through it without any
// test-only code paths of their own.
//
// Determinism: every decision is a pure function of (plan seed, lane, op,
// per-lane op ordinal). A lane is a logical actor — typically one client
// thread — named with FaultLaneScope; threads that never name a lane get
// a stable anonymous one. Re-running the same single-threaded op sequence
// under the same plan yields byte-identical fault schedules, which is what
// lets the chaos suite replay a failing seed.
//
// Cost when disarmed: one relaxed atomic load per I/O call (measured to be
// in the noise of bench/serve_throughput); no allocation, no locks.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace f2pm::net {

/// The transport operations a plan can target.
enum class FaultOp : std::size_t {
  kConnect = 0,  ///< TcpStream::connect
  kAccept = 1,   ///< TcpListener::accept / try_accept
  kRead = 2,     ///< recv_some / recv_exact
  kWrite = 3,    ///< send_some / send_all
};
inline constexpr std::size_t kFaultOpCount = 4;

/// What to do to one targeted operation.
enum class FaultAction : std::size_t {
  kNone = 0,
  kRefuse = 1,   ///< Connect: fail as if ECONNREFUSED. Accept: drop the
                 ///< freshly accepted connection on the floor.
  kReset = 2,    ///< Read/write: hard-close the socket (RST via SO_LINGER)
                 ///< and surface a connection-reset error.
  kShortIo = 3,  ///< Read/write: clamp the transfer to `param` bytes.
  kEagain = 4,   ///< Read/write: report not-ready `param` times in a row
                 ///< (an EAGAIN storm) before real I/O resumes.
  kDelay = 5,    ///< Any op: sleep `param` milliseconds first (delayed
                 ///< connect, stalled peer).
};
inline constexpr std::size_t kFaultActionCount = 6;

/// One scripted event: lane `lane`'s `index`-th `op` suffers `action`.
struct ScriptedFault {
  std::uint64_t lane = 0;
  FaultOp op = FaultOp::kRead;
  std::uint64_t index = 0;  ///< 0-based ordinal of that op within the lane.
  FaultAction action = FaultAction::kNone;
  std::uint32_t param = 0;  ///< Bytes for kShortIo, count for kEagain,
                            ///< milliseconds for kDelay; unused otherwise.
};

/// A deterministic schedule of transport faults. Rates are per-operation
/// probabilities in [0, 1]; the script overrides the rates at its exact
/// (lane, op, index) coordinates.
struct FaultPlan {
  std::uint64_t seed = 0;

  double refuse_connect_rate = 0.0;
  double delay_connect_rate = 0.0;
  std::uint32_t connect_delay_ms = 2;

  double accept_drop_rate = 0.0;

  double read_reset_rate = 0.0;
  double write_reset_rate = 0.0;

  double short_read_rate = 0.0;
  double short_write_rate = 0.0;
  std::uint32_t short_io_bytes = 1;

  double read_eagain_rate = 0.0;
  double write_eagain_rate = 0.0;
  std::uint32_t eagain_burst = 3;

  double stall_rate = 0.0;  ///< Applies to reads and writes.
  std::uint32_t stall_ms = 1;

  std::vector<ScriptedFault> script;

  /// True when no rate is set and the script is empty — an empty plan
  /// makes every decision kNone (used to measure instrumentation cost).
  [[nodiscard]] bool empty() const noexcept;
};

/// The verdict for one operation, applied by the socket layer.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::uint32_t param = 0;
};

/// Decides and counts faults for an installed plan. All methods are
/// thread-safe; decision state advances per calling thread's lane.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector, or nullptr when fault injection is off.
  /// This is the hot-path check: a single relaxed atomic load.
  static FaultInjector* active() noexcept {
    return active_.load(std::memory_order_acquire);
  }

  /// Advances the calling lane's ordinal for `op` and returns the verdict.
  /// Non-kNone verdicts are counted (see injected()).
  FaultDecision next(FaultOp op) noexcept;

  /// How many faults of one kind have been injected so far.
  [[nodiscard]] std::uint64_t injected(FaultAction action) const noexcept {
    return counts_[static_cast<std::size_t>(action)].load(
        std::memory_order_relaxed);
  }

  /// Total injected faults of any kind.
  [[nodiscard]] std::uint64_t total_injected() const noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  friend class ScopedFaultInjection;

  [[nodiscard]] FaultDecision decide(std::uint64_t lane, FaultOp op,
                                     std::uint64_t index) const noexcept;
  void count(FaultAction action) noexcept;

  static std::atomic<FaultInjector*> active_;

  FaultPlan plan_;
  /// Script indexed by a mixed (lane, op, index) key for O(1) lookup.
  std::unordered_map<std::uint64_t, FaultDecision> script_;
  std::array<std::atomic<std::uint64_t>, kFaultActionCount> counts_{};
};

/// Installs a plan process-wide for the lifetime of the scope. Only one
/// may be active at a time (throws std::logic_error otherwise). The caller
/// must not destroy the scope while injected I/O is still in flight — in
/// tests, uninstall after the service is stopped and clients joined.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan);
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
  ~ScopedFaultInjection();

  [[nodiscard]] FaultInjector& injector() noexcept { return injector_; }

 private:
  FaultInjector injector_;
};

/// Names the calling thread's fault lane for the lifetime of the scope
/// (restores the previous lane on exit). Lane ordinals restart from zero
/// each time a lane is entered, so "client c under seed s" is a fully
/// reproducible schedule regardless of thread interleaving.
class FaultLaneScope {
 public:
  explicit FaultLaneScope(std::uint64_t lane);
  FaultLaneScope(const FaultLaneScope&) = delete;
  FaultLaneScope& operator=(const FaultLaneScope&) = delete;
  ~FaultLaneScope();

 private:
  std::uint64_t previous_lane_;
  bool previous_named_;
  std::array<std::uint64_t, kFaultOpCount> previous_ordinals_;
  std::uint32_t previous_eagain_left_;
};

}  // namespace f2pm::net
