#include "net/fms.hpp"

#include "util/logging.hpp"

namespace f2pm::net {

FeatureMonitorServer::FeatureMonitorServer(std::uint16_t port)
    : listener_(port), thread_([this] { serve(); }) {}

FeatureMonitorServer::~FeatureMonitorServer() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void FeatureMonitorServer::serve() {
  auto client = listener_.accept();
  if (!client) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    return;
  }
  try {
    while (true) {
      auto frame = receive_frame(*client);
      if (!frame) break;  // client vanished without bye
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto* datapoint = std::get_if<data::RawDatapoint>(&*frame)) {
        current_run_.samples.push_back(*datapoint);
      } else if (const auto* fail = std::get_if<FailEvent>(&*frame)) {
        current_run_.failed = true;
        current_run_.fail_time = fail->fail_time;
        history_.add_run(std::move(current_run_));
        current_run_ = data::Run{};
      } else {
        break;  // bye
      }
    }
  } catch (const std::exception& e) {
    F2PM_LOG(kWarn, "fms") << "connection error: " << e.what();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  done_ = true;
}

data::DataHistory FeatureMonitorServer::wait_and_take_history() {
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!current_run_.samples.empty()) {
    // Trailing samples without a fail event form an unfailed run.
    current_run_.failed = false;
    current_run_.fail_time = current_run_.samples.back().tgen;
    history_.add_run(std::move(current_run_));
    current_run_ = data::Run{};
  }
  return std::move(history_);
}

void FeatureMonitorServer::stop() { listener_.shutdown(); }

}  // namespace f2pm::net
