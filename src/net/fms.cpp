#include "net/fms.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <utility>

#include "net/poller.hpp"
#include "util/logging.hpp"

namespace f2pm::net {

FeatureMonitorServer::FeatureMonitorServer(std::uint16_t port)
    : listener_(port) {
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("FeatureMonitorServer: pipe failed");
  }
  stop_rx_ = Socket(pipe_fds[0]);
  stop_tx_ = Socket(pipe_fds[1]);
  thread_ = std::thread([this] { serve(); });
}

FeatureMonitorServer::~FeatureMonitorServer() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void FeatureMonitorServer::serve() {
  Poller poller;
  listener_.set_nonblocking(true);
  poller.add(listener_.fd(), /*want_read=*/true, /*want_write=*/false);
  poller.add(stop_rx_.fd(), /*want_read=*/true, /*want_write=*/false);

  std::optional<TcpStream> client;
  FrameDecoder decoder;
  std::array<char, 16384> chunk;
  bool running = true;

  // handle_frame returns false when the session is over (bye received).
  auto handle_frame = [this](const Frame& frame) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto* datapoint = std::get_if<data::RawDatapoint>(&frame)) {
      current_run_.samples.push_back(*datapoint);
    } else if (const auto* fail = std::get_if<FailEvent>(&frame)) {
      current_run_.failed = true;
      current_run_.fail_time = fail->fail_time;
      history_.add_run(std::move(current_run_));
      current_run_ = data::Run{};
    } else if (const auto* hello = std::get_if<Hello>(&frame)) {
      client_id_ = hello->client_id;
    } else if (std::get_if<Bye>(&frame) != nullptr) {
      return false;
    }
    // Prediction frames are server->client only; a client echoing one is
    // harmless and ignored here.
    return true;
  };

  while (running) {
    for (const Poller::Event& event : poller.wait(-1)) {
      if (event.fd == stop_rx_.fd()) {
        running = false;
        break;
      }
      if (event.fd == listener_.fd()) {
        auto accepted = listener_.try_accept();
        if (!accepted) continue;
        // Legacy one-client semantics: serve the first connection only.
        poller.remove(listener_.fd());
        client = std::move(*accepted);
        client->set_nonblocking(true);
        poller.add(client->fd(), /*want_read=*/true, /*want_write=*/false);
        continue;
      }
      if (!client || event.fd != client->fd()) continue;
      try {
        while (running) {
          std::size_t got = 0;
          const IoResult io = client->recv_some(chunk.data(), chunk.size(), got);
          if (io == IoResult::kWouldBlock) break;
          if (io == IoResult::kEof) {
            if (decoder.mid_frame()) {
              F2PM_LOG(kWarn, "fms") << "client closed mid-frame; keeping "
                                        "the datapoints received so far";
            }
            running = false;  // client vanished without bye
            break;
          }
          decoder.feed(chunk.data(), got);
          while (auto frame = decoder.next()) {
            if (!handle_frame(*frame)) {
              running = false;
              break;
            }
          }
        }
      } catch (const std::exception& e) {
        F2PM_LOG(kWarn, "fms") << "connection error: " << e.what();
        running = false;
      }
    }
  }
  if (client) {
    poller.remove(client->fd());
    client->close();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  done_ = true;
}

data::DataHistory FeatureMonitorServer::wait_and_take_history() {
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!current_run_.samples.empty()) {
    // Trailing samples without a fail event form an unfailed run.
    current_run_.failed = false;
    current_run_.fail_time = current_run_.samples.back().tgen;
    history_.add_run(std::move(current_run_));
    current_run_ = data::Run{};
  }
  return std::move(history_);
}

void FeatureMonitorServer::stop() {
  if (!stop_tx_.valid()) return;
  const char byte = 1;
  // Idempotent wakeup; EAGAIN/EPIPE are fine (already stopping/stopped).
  [[maybe_unused]] const ssize_t n = ::write(stop_tx_.fd(), &byte, 1);
}

std::string FeatureMonitorServer::client_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return client_id_;
}

}  // namespace f2pm::net
