// Feature Monitor Client (paper §III-E): the thin client installed on the
// monitored system. It forwards datapoints (here: whatever source produces
// them — in production /proc readings, in this repo the simulator's
// monitor) to the Feature Monitor Server over TCP.
#pragma once

#include <cstdint>
#include <string>

#include "data/datapoint.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

/// Connected FMC session.
class FeatureMonitorClient {
 public:
  /// Connects to the FMS; throws std::runtime_error on failure.
  FeatureMonitorClient(const std::string& host, std::uint16_t port);

  /// Forwards one datapoint.
  void send(const data::RawDatapoint& datapoint);

  /// Signals that the monitored system met the failure condition at
  /// `fail_time` (elapsed seconds); the FMS closes the current run.
  void report_failure(double fail_time);

  /// Sends the bye frame and closes the connection.
  void finish();

  [[nodiscard]] std::size_t datapoints_sent() const { return sent_; }

 private:
  TcpStream stream_;
  std::size_t sent_ = 0;
  bool finished_ = false;
};

}  // namespace f2pm::net
