// Feature Monitor Client (paper §III-E): the thin client installed on the
// monitored system. It forwards datapoints (here: whatever source produces
// them — in production /proc readings, in this repo the simulator's
// monitor) to the Feature Monitor Server over TCP.
//
// Resilience: with ClientOptions::reconnect enabled the client survives a
// server bounce. Sent datapoints are kept in a bounded replay buffer until
// a Prediction proves their window closed server-side; after a reconnect
// (capped exponential backoff + deterministic jitter) the client re-sends
// its Hello and replays the buffer. Because OnlinePredictor aligns windows
// to absolute multiples of the window width, the replay reproduces the
// exact window the server lost, so the open aggregation window survives
// the bounce. A window-end watermark drops the rare duplicate prediction
// when a pre-bounce flush overlaps the replayed window.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "data/datapoint.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

/// Tuning knobs for connection establishment and fault recovery. The
/// defaults reproduce the legacy single-shot client: one connect attempt,
/// no reconnect, no deadlines.
struct ClientOptions {
  /// Total connect attempts (initial connect and each reconnect round).
  std::size_t max_connect_attempts = 1;

  /// Exponential backoff between attempts: delay k is
  /// min(backoff_max_seconds, backoff_initial_seconds * multiplier^k)
  /// scaled by a deterministic jitter factor in [0.5, 1).
  double backoff_initial_seconds = 0.02;
  double backoff_max_seconds = 1.0;
  double backoff_multiplier = 2.0;
  std::uint64_t jitter_seed = 0;

  /// Recover from transport errors by reconnecting, re-sending the Hello
  /// and replaying unacknowledged datapoints.
  bool reconnect = false;

  /// Upper bound on one blocking operation (wait_prediction, fetch_stats),
  /// including any reconnects it triggers. 0 means no deadline. Exceeding
  /// it throws std::runtime_error.
  double op_deadline_seconds = 0.0;

  /// Replay buffer cap; the oldest entries are dropped beyond it.
  std::size_t max_replay_datapoints = 4096;
};

/// Connected FMC session.
class FeatureMonitorClient {
 public:
  /// Connects to the FMS; throws std::runtime_error on failure.
  FeatureMonitorClient(const std::string& host, std::uint16_t port);
  FeatureMonitorClient(const std::string& host, std::uint16_t port,
                       ClientOptions options);

  /// Announces this client to the server (versioned Hello frame). Calling
  /// it is optional — hello-less clients are served as ingest-only — but
  /// only sessions that said hello receive Prediction replies from the
  /// f2pm_serve prediction service. Re-sent automatically on reconnect.
  void hello(const std::string& client_id);

  /// Forwards one datapoint.
  void send(const data::RawDatapoint& datapoint);

  /// Drains any server->client frames already received without blocking
  /// and returns the next Prediction, if one arrived. Other server frames
  /// are ignored. Returns nullopt when no complete prediction is pending.
  std::optional<Prediction> poll_prediction();

  /// Blocks until the next Prediction arrives or the server closes the
  /// connection (then returns nullopt). With reconnect enabled, a closed
  /// or reset connection before finish() triggers reconnect-and-replay
  /// instead of returning.
  std::optional<Prediction> wait_prediction();

  /// Signals that the monitored system met the failure condition at
  /// `fail_time` (elapsed seconds); the FMS closes the current run. Also
  /// clears the replay buffer and prediction watermark — the aggregation
  /// timeline restarts after a failure.
  void report_failure(double fail_time);

  /// Requests the server's metrics registry and blocks until the
  /// StatsReply arrives (Prometheus text exposition). Prediction frames
  /// received while waiting are buffered for the prediction accessors.
  /// Returns nullopt when the server closes before replying (e.g. a
  /// legacy FMS that does not understand the frame drops the session).
  std::optional<std::string> fetch_stats();

  /// Sends the bye frame and half-closes the connection (write side).
  /// Call wait_prediction() afterwards to drain any replies the server
  /// still flushes; it returns nullopt once the server closes.
  void finish();

  [[nodiscard]] std::size_t datapoints_sent() const { return sent_; }
  [[nodiscard]] std::size_t predictions_received() const {
    return predictions_received_;
  }
  /// How many times the session recovered by reconnecting.
  [[nodiscard]] std::size_t reconnects() const { return reconnects_; }
  /// Datapoints re-sent across all reconnects.
  [[nodiscard]] std::size_t replayed_datapoints() const { return replayed_; }

 private:
  struct Deadline;  ///< Per-operation time budget (see fmc.cpp).

  [[nodiscard]] Deadline start_op() const;
  TcpStream connect_with_backoff();
  void reconnect_and_replay(const Deadline& deadline);
  void backoff_sleep(std::size_t attempt, const Deadline& deadline);

  /// Applies dedup + replay pruning; false means "duplicate, drop it".
  bool admit_prediction(const Prediction& prediction);
  std::optional<Prediction> next_buffered_prediction();

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  std::uint64_t backoff_draws_ = 0;  ///< Jitter stream position.
  TcpStream stream_;
  FrameDecoder decoder_;  ///< Reassembles server->client reply frames.
  /// Predictions decoded while waiting for a StatsReply, served to the
  /// prediction accessors in arrival order.
  std::deque<Prediction> pending_predictions_;

  /// Datapoints sent but not yet covered by a received Prediction; what a
  /// reconnect replays to rebuild the server's open window.
  std::deque<data::RawDatapoint> replay_;
  bool have_watermark_ = false;
  double last_window_end_ = 0.0;

  std::string client_id_;
  bool hello_sent_ = false;
  std::size_t sent_ = 0;
  std::size_t predictions_received_ = 0;
  std::size_t reconnects_ = 0;
  std::size_t replayed_ = 0;
  bool finished_ = false;
};

}  // namespace f2pm::net
