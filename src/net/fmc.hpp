// Feature Monitor Client (paper §III-E): the thin client installed on the
// monitored system. It forwards datapoints (here: whatever source produces
// them — in production /proc readings, in this repo the simulator's
// monitor) to the Feature Monitor Server over TCP.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "data/datapoint.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::net {

/// Connected FMC session.
class FeatureMonitorClient {
 public:
  /// Connects to the FMS; throws std::runtime_error on failure.
  FeatureMonitorClient(const std::string& host, std::uint16_t port);

  /// Announces this client to the server (versioned Hello frame). Calling
  /// it is optional — hello-less clients are served as ingest-only — but
  /// only sessions that said hello receive Prediction replies from the
  /// f2pm_serve prediction service.
  void hello(const std::string& client_id);

  /// Forwards one datapoint.
  void send(const data::RawDatapoint& datapoint);

  /// Drains any server->client frames already received without blocking
  /// and returns the next Prediction, if one arrived. Other server frames
  /// are ignored. Returns nullopt when no complete prediction is pending.
  std::optional<Prediction> poll_prediction();

  /// Blocks until the next Prediction arrives or the server closes the
  /// connection (then returns nullopt).
  std::optional<Prediction> wait_prediction();

  /// Signals that the monitored system met the failure condition at
  /// `fail_time` (elapsed seconds); the FMS closes the current run.
  void report_failure(double fail_time);

  /// Requests the server's metrics registry and blocks until the
  /// StatsReply arrives (Prometheus text exposition). Prediction frames
  /// received while waiting are buffered for the prediction accessors.
  /// Returns nullopt when the server closes before replying (e.g. a
  /// legacy FMS that does not understand the frame drops the session).
  std::optional<std::string> fetch_stats();

  /// Sends the bye frame and half-closes the connection (write side).
  /// Call wait_prediction() afterwards to drain any replies the server
  /// still flushes; it returns nullopt once the server closes.
  void finish();

  [[nodiscard]] std::size_t datapoints_sent() const { return sent_; }
  [[nodiscard]] std::size_t predictions_received() const {
    return predictions_received_;
  }

 private:
  std::optional<Prediction> next_buffered_prediction();

  TcpStream stream_;
  FrameDecoder decoder_;  ///< Reassembles server->client reply frames.
  /// Predictions decoded while waiting for a StatsReply, served to the
  /// prediction accessors in arrival order.
  std::deque<Prediction> pending_predictions_;
  std::size_t sent_ = 0;
  std::size_t predictions_received_ = 0;
  bool finished_ = false;
};

}  // namespace f2pm::net
