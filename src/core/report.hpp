// Text rendering of the pipeline's model scorecards in the layout of the
// paper's tables: side-by-side "all parameters" vs "Lasso-selected"
// columns for S-MAE (Table II), training time (Table III) and validation
// time (Table IV), plus the Fig. 4 selection curve and Table I weights.
#pragma once

#include <string>
#include <vector>

#include "core/feature_selection.hpp"
#include "core/pipeline.hpp"

namespace f2pm::core {

/// Pretty model label ("reptree" -> "REP Tree", "svm2" -> "SVM2", ...).
std::string display_model_name(const std::string& name);

/// Table II: S-MAE (seconds) for both feature sets.
std::string render_smae_table(const PipelineResult& result);

/// Table III: training time (seconds) for both feature sets.
std::string render_training_time_table(const PipelineResult& result);

/// Table IV: validation time (seconds) for both feature sets.
std::string render_validation_time_table(const PipelineResult& result);

/// Fig. 4 data: "lambda  selected_parameter_count" rows.
std::string render_selection_curve(const FeatureSelectionResult& selection);

/// Table I: surviving features and weights at one λ.
std::string render_selected_weights(const FeatureSelectionResult& selection,
                                    double lambda);

/// Full scorecard (every metric of §III-D) for one feature set.
std::string render_full_scorecard(const std::vector<ModelOutcome>& outcomes,
                                  const std::string& title);

}  // namespace f2pm::core
