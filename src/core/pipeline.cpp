#include "core/pipeline.hpp"

#include <stdexcept>

#include "linalg/stats.hpp"
#include "ml/lasso.hpp"
#include "ml/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace f2pm::core {

namespace {

/// Expands "lasso" into one λ-tagged entry per λ; other names pass through.
struct ModelSpec {
  std::string registry_name;
  std::string display_name;
  util::Config params;
};

std::vector<ModelSpec> expand_models(const std::vector<std::string>& models,
                                     const std::vector<double>& lasso_lambdas,
                                     const util::Config& base_params) {
  std::vector<ModelSpec> specs;
  for (const auto& name : models) {
    if (name == "lasso") {
      for (double lambda : lasso_lambdas) {
        ModelSpec spec;
        spec.registry_name = "lasso";
        spec.display_name =
            "lasso-lambda-" + util::format_double(lambda, 0);
        spec.params = base_params;
        spec.params.set("lasso.lambda", util::format_double(lambda, 9));
        specs.push_back(std::move(spec));
      }
    } else {
      specs.push_back({name, name, base_params});
    }
  }
  return specs;
}

ModelOutcome evaluate_one(const ModelSpec& spec, const data::Dataset& train,
                          const data::Dataset& validation,
                          double soft_threshold) {
  auto model = ml::make_model(spec.registry_name, spec.params);
  ModelOutcome outcome;
  outcome.display_name = spec.display_name;
  outcome.report = ml::evaluate_model(*model, train.x, train.y, validation.x,
                                      validation.y, soft_threshold);
  outcome.report.model_name = spec.display_name;
  outcome.predicted = model->predict(validation.x);
  return outcome;
}

}  // namespace

std::vector<ModelOutcome> evaluate_models(
    const data::Dataset& train, const data::Dataset& validation,
    const std::vector<std::string>& models,
    const std::vector<double>& lasso_lambdas, double soft_threshold,
    const util::Config& model_params, bool parallel,
    std::size_t parallel_threads) {
  const auto specs = expand_models(models, lasso_lambdas, model_params);
  std::vector<ModelOutcome> outcomes(specs.size());
  if (!parallel) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      outcomes[i] = evaluate_one(specs[i], train, validation, soft_threshold);
    }
    return outcomes;
  }
  // Model-level parallelism runs on a dedicated pool; the inner numeric
  // loops use the global pool, so there is no nested-wait deadlock.
  parallel::ThreadPool pool(parallel_threads);
  std::vector<std::future<void>> futures;
  futures.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    futures.push_back(pool.submit([&, i] {
      outcomes[i] = evaluate_one(specs[i], train, validation, soft_threshold);
    }));
  }
  for (auto& future : futures) future.get();
  return outcomes;
}

PipelineResult run_pipeline(const data::DataHistory& history,
                            const PipelineOptions& options) {
  PipelineResult result;

  // Phase 1-2 (Fig. 1): aggregation + added metrics + RTTF labeling.
  const auto aggregated = data::aggregate(history, options.aggregation);
  if (aggregated.empty()) {
    throw std::invalid_argument(
        "run_pipeline: the history produced no labeled datapoints "
        "(no failed runs, or windows larger than the runs)");
  }
  result.dataset = data::build_dataset(aggregated);
  F2PM_LOG(kInfo, "pipeline")
      << "aggregated " << history.num_samples() << " raw samples into "
      << result.dataset.num_rows() << " datapoints ("
      << result.dataset.num_features() << " input features)";

  util::Rng rng(options.seed);
  auto split = options.split_by_run
                   ? data::split_dataset_by_run(result.dataset,
                                                options.train_fraction, rng)
                   : data::split_dataset(result.dataset,
                                         options.train_fraction, rng);
  result.train = std::move(split.train);
  result.validation = std::move(split.validation);
  if (result.train.num_rows() == 0 || result.validation.num_rows() == 0) {
    throw std::invalid_argument(
        "run_pipeline: train/validation split left one side empty");
  }

  result.soft_threshold =
      options.soft_mae_fraction * linalg::max_value(result.dataset.y);

  const std::vector<double> lasso_lambdas =
      options.lasso_predictor_lambdas.empty() ? paper_lambda_grid()
                                              : options.lasso_predictor_lambdas;

  // Phase 3 (Fig. 1, optional): Lasso feature selection on the train side.
  if (options.run_feature_selection) {
    const std::vector<double> grid = options.selection_lambdas.empty()
                                         ? paper_lambda_grid()
                                         : options.selection_lambdas;
    result.selection = select_features(result.train, grid);
    result.selected_columns =
        result.selection->at_lambda(options.selection_lambda).selected;
    F2PM_LOG(kInfo, "pipeline")
        << "lasso selection at lambda=" << options.selection_lambda
        << " kept " << result.selected_columns.size() << " of "
        << result.train.num_features() << " features";
  }

  // Phase 4 (Fig. 1): model generation & validation.
  result.using_all_features = evaluate_models(
      result.train, result.validation, options.models, lasso_lambdas,
      result.soft_threshold, options.model_params, options.parallel_training,
      options.parallel_threads);

  if (options.run_feature_selection && !result.selected_columns.empty()) {
    const data::Dataset train_sel =
        result.train.select_features(result.selected_columns);
    const data::Dataset validation_sel =
        result.validation.select_features(result.selected_columns);
    result.using_selected_features = evaluate_models(
        train_sel, validation_sel, options.models, lasso_lambdas,
        result.soft_threshold, options.model_params,
        options.parallel_training, options.parallel_threads);
  }
  return result;
}

}  // namespace f2pm::core
