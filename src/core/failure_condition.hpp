// User-defined failure conditions (paper §I, §III): the condition that,
// when met, marks the monitored system as failed and timestamps the fail
// event. Conditions are predicates over a raw datapoint plus the current
// inter-generation time, composable with AND/OR, and self-describing so
// reports can state exactly what "failure" meant for a campaign.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "data/datapoint.hpp"

namespace f2pm::core {

/// Composable failure predicate.
class FailureCondition {
 public:
  /// Inputs a condition sees: the current sample and the inter-generation
  /// time (seconds since the previous datapoint; 0 for the first one).
  struct Context {
    const data::RawDatapoint& sample;
    double intergen_time = 0.0;
  };

  /// Feature comparison builders.
  static FailureCondition feature_above(data::FeatureId feature,
                                        double threshold);
  static FailureCondition feature_below(data::FeatureId feature,
                                        double threshold);
  /// Inter-generation-time threshold (the §III-B "additional feature" the
  /// user can bound to declare the system failed by overload).
  static FailureCondition intergen_above(double threshold);

  /// Always-false condition (identity for OR).
  static FailureCondition never();

  /// Conjunction / disjunction.
  [[nodiscard]] FailureCondition operator&&(const FailureCondition& rhs) const;
  [[nodiscard]] FailureCondition operator||(const FailureCondition& rhs) const;

  /// Evaluates the predicate.
  [[nodiscard]] bool evaluate(const Context& context) const;

  /// Human-readable form, e.g. "(swap_free < 10240) OR (intergen > 5)".
  [[nodiscard]] const std::string& describe() const { return description_; }

 private:
  FailureCondition(std::function<bool(const Context&)> predicate,
                   std::string description);

  std::function<bool(const Context&)> predicate_;
  std::string description_;
};

/// Scans a run's samples in order and returns the index of the first
/// sample satisfying the condition, or npos if none does.
std::size_t first_failure_index(const FailureCondition& condition,
                                const std::vector<data::RawDatapoint>& samples);

}  // namespace f2pm::core
