// Online (deployment-side) RTTF prediction.
//
// The pipeline trains models offline; this module runs one: it consumes
// the live datapoint stream of a monitored system, maintains the current
// aggregation window incrementally (same window means, Eq. (1) slopes and
// inter-generation metrics as data::aggregate), and emits an RTTF
// prediction each time a window closes. RejuvenationAdvisor layers the
// proactive-rejuvenation policy from the paper's introduction on top:
// trigger once the predicted RTTF stays below the action lead time for a
// configurable number of consecutive windows.
#pragma once

#include <cstddef>
#include <memory>
#include <memory_resource>
#include <optional>
#include <vector>

#include "data/aggregation.hpp"
#include "data/datapoint.hpp"
#include "ml/model.hpp"

namespace f2pm::ml {
class CascadeRegressor;
}  // namespace f2pm::ml

namespace f2pm::core {

/// One prediction, produced when an aggregation window closes.
struct OnlinePrediction {
  double window_end = 0.0;   ///< Elapsed time the prediction refers to.
  double rttf = 0.0;         ///< Predicted remaining time to failure.
  std::size_t window_samples = 0;  ///< Raw datapoints in the window.
  /// True when a cascade model promoted this window to its full stage
  /// (always false for non-cascade models).
  bool promoted = false;
};

/// Streams raw datapoints through the aggregation front-end into a fitted
/// model. The model is shared (not owned exclusively) so one trained model
/// can serve many monitored instances.
class OnlinePredictor {
 public:
  /// `model` must be fitted; its input width must equal kInputCount, or
  /// the size of `selected_columns` when that is non-empty (the model was
  /// trained on a Lasso-selected subset). Throws std::invalid_argument on
  /// any mismatch. `memory`, when non-null, backs the window buffer (the
  /// serve tier passes its per-shard session arena so per-session window
  /// storage recycles across sessions); null uses the default resource.
  OnlinePredictor(std::shared_ptr<const ml::Regressor> model,
                  data::AggregationOptions aggregation,
                  std::vector<std::size_t> selected_columns = {},
                  std::pmr::memory_resource* memory = nullptr);

  /// Pre-sizes the window buffer for `samples` datapoints so steady-state
  /// appends never allocate (the buffer also grows on demand and never
  /// shrinks, so any observed window size is paid for at most once).
  void reserve_window(std::size_t samples);

  /// Feeds the next datapoint (tgen must be nondecreasing; throws
  /// std::invalid_argument otherwise). Returns a prediction when this
  /// datapoint closed the previous window and the window had enough
  /// samples.
  std::optional<OnlinePrediction> observe(const data::RawDatapoint& point);

  /// Closes the currently open window without waiting for the sample that
  /// would normally close it: emits a best-effort prediction when the open
  /// window already holds min_samples_per_window samples, discards it
  /// otherwise. Call when the stream ends (serve drain, Ctrl-C, end of a
  /// replayed trace) so the final window of a session is not silently
  /// lost. Idempotent: a second flush with no new samples, or a flush on
  /// an empty stream, returns nullopt.
  std::optional<OnlinePrediction> flush();

  /// Clears all window state (call after the system restarts).
  void reset();

  [[nodiscard]] std::size_t windows_emitted() const {
    return windows_emitted_;
  }

 private:
  [[nodiscard]] OnlinePrediction aggregate_and_predict();

  std::shared_ptr<const ml::Regressor> model_;
  /// Non-null when model_ is a cascade: the window then pays screen cost
  /// only unless promoted, and predictions carry the routing decision.
  const ml::CascadeRegressor* cascade_ = nullptr;
  data::AggregationOptions aggregation_;
  std::vector<std::size_t> selected_columns_;
  /// Samples in the current window. Arena-backed when the caller passed a
  /// memory resource; cleared (capacity kept) at every window boundary,
  /// so the steady-state observe() path never allocates.
  std::pmr::vector<data::RawDatapoint> window_;
  /// Reused column-gather scratch for the selected-columns path; sized
  /// once at construction.
  std::vector<double> row_scratch_;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  bool window_open_ = false;
  std::optional<double> previous_tgen_;  ///< Last sample overall (ordering).
  std::optional<double> boundary_tgen_;  ///< Last sample of the previous
                                         ///< window (boundary intergen gap).
  std::size_t windows_emitted_ = 0;
};

/// The proactive-rejuvenation trigger policy.
struct AdvisorOptions {
  /// Rejuvenate when the predicted RTTF drops below this many seconds
  /// (the lead time needed to act cleanly).
  double lead_seconds = 180.0;
  /// Require this many consecutive below-lead predictions (debounce).
  std::size_t consecutive_windows = 2;
};

/// Debounced threshold policy over an OnlinePredictor's output.
class RejuvenationAdvisor {
 public:
  explicit RejuvenationAdvisor(AdvisorOptions options);

  /// Feeds one prediction; returns true when the policy says "act now".
  /// Once triggered it stays triggered until reset().
  bool update(const OnlinePrediction& prediction);

  [[nodiscard]] bool triggered() const { return triggered_; }
  /// The window_end of the prediction that fired the trigger.
  [[nodiscard]] double trigger_time() const { return trigger_time_; }

  void reset();

 private:
  AdvisorOptions options_;
  std::size_t below_count_ = 0;
  bool triggered_ = false;
  double trigger_time_ = 0.0;
};

}  // namespace f2pm::core
