#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "util/string_util.hpp"

namespace f2pm::core {

namespace {

/// Extracts one numeric column from outcomes via a member accessor.
template <typename Getter>
std::string render_two_column_table(const PipelineResult& result,
                                    const std::string& title,
                                    const std::string& value_header,
                                    Getter getter, int precision) {
  std::ostringstream out;
  out << title << '\n';
  out << std::left << std::setw(34) << "Algorithm" << std::right
      << std::setw(18) << ("All params " + value_header);
  const bool have_selected = !result.using_selected_features.empty();
  if (have_selected) {
    out << std::setw(20) << ("Lasso-sel. " + value_header);
  }
  out << '\n';
  out << std::string(have_selected ? 72 : 52, '-') << '\n';
  for (std::size_t i = 0; i < result.using_all_features.size(); ++i) {
    const auto& all = result.using_all_features[i];
    out << std::left << std::setw(34)
        << display_model_name(all.display_name) << std::right << std::setw(18)
        << util::format_double(getter(all.report), precision);
    if (have_selected) {
      out << std::setw(20)
          << util::format_double(
                 getter(result.using_selected_features[i].report), precision);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace

std::string display_model_name(const std::string& name) {
  if (name == "linear") return "Linear Regression";
  if (name == "ridge") return "Ridge Regression";
  if (name == "m5p") return "M5P";
  if (name == "reptree") return "REP Tree";
  if (name == "svm") return "SVM";
  if (name == "svm2") return "SVM2";
  if (name == "knn") return "KNN";
  if (util::starts_with(name, "lasso-lambda-")) {
    const std::string lambda = name.substr(std::string("lasso-lambda-").size());
    // Render 1000000000 as "Lasso (λ = 1e9)"-style scientific shorthand.
    int zeros = 0;
    for (std::size_t i = lambda.size(); i-- > 1;) {
      if (lambda[i] == '0') {
        ++zeros;
      } else {
        break;
      }
    }
    if (zeros > 0 && lambda.size() == static_cast<std::size_t>(zeros) + 1) {
      return "Lasso (lambda = " + lambda.substr(0, 1) + "e" +
             std::to_string(zeros) + ")";
    }
    return "Lasso (lambda = " + lambda + ")";
  }
  if (name == "lasso") return "Lasso";
  return name;
}

std::string render_smae_table(const PipelineResult& result) {
  return render_two_column_table(
      result,
      "TABLE II-equivalent: SOFT MEAN ABSOLUTE ERROR - threshold " +
          util::format_double(result.soft_threshold, 1) + "s",
      "S-MAE (s)",
      [](const ml::EvaluationReport& r) { return r.soft_mae; }, 3);
}

std::string render_training_time_table(const PipelineResult& result) {
  return render_two_column_table(
      result, "TABLE III-equivalent: TRAINING TIME", "train (s)",
      [](const ml::EvaluationReport& r) { return r.training_seconds; }, 4);
}

std::string render_validation_time_table(const PipelineResult& result) {
  return render_two_column_table(
      result, "TABLE IV-equivalent: VALIDATION TIME", "valid (s)",
      [](const ml::EvaluationReport& r) { return r.validation_seconds; }, 4);
}

std::string render_selection_curve(const FeatureSelectionResult& selection) {
  std::ostringstream out;
  out << "FIG. 4-equivalent: parameters selected by Lasso vs lambda\n";
  out << std::left << std::setw(16) << "lambda" << "selected\n";
  for (const auto& entry : selection.entries) {
    out << std::left << std::setw(16)
        << util::format_double(entry.lambda, 0) << entry.selected.size()
        << '\n';
  }
  return out.str();
}

std::string render_selected_weights(const FeatureSelectionResult& selection,
                                    double lambda) {
  const SelectionEntry& entry = selection.at_lambda(lambda);
  std::ostringstream out;
  out << "TABLE I-equivalent: weights assigned at lambda = "
      << util::format_double(lambda, 0) << '\n';
  out << std::left << std::setw(26) << "Parameter" << "Weight\n";
  out << std::string(44, '-') << '\n';
  for (std::size_t i = 0; i < entry.names.size(); ++i) {
    out << std::left << std::setw(26) << entry.names[i]
        << util::format_double(entry.weights[i], 15) << '\n';
  }
  return out.str();
}

std::string render_full_scorecard(const std::vector<ModelOutcome>& outcomes,
                                  const std::string& title) {
  std::ostringstream out;
  out << title << '\n';
  out << std::left << std::setw(34) << "Algorithm" << std::right
      << std::setw(12) << "MAE" << std::setw(10) << "RAE" << std::setw(12)
      << "MaxAE" << std::setw(12) << "S-MAE" << std::setw(10) << "R2"
      << std::setw(12) << "train(s)" << std::setw(12) << "valid(s)" << '\n';
  out << std::string(114, '-') << '\n';
  for (const auto& outcome : outcomes) {
    const auto& r = outcome.report;
    out << std::left << std::setw(34)
        << display_model_name(outcome.display_name) << std::right
        << std::setw(12) << util::format_double(r.mae, 2) << std::setw(10)
        << util::format_double(r.rae, 3) << std::setw(12)
        << util::format_double(r.max_ae, 1) << std::setw(12)
        << util::format_double(r.soft_mae, 2) << std::setw(10)
        << util::format_double(r.r2, 3) << std::setw(12)
        << util::format_double(r.training_seconds, 4) << std::setw(12)
        << util::format_double(r.validation_seconds, 4) << '\n';
  }
  return out.str();
}

}  // namespace f2pm::core
