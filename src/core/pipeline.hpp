// The end-to-end F2PM workflow (paper Fig. 1): data history -> datapoint
// aggregation & added metrics -> optional Lasso feature selection -> model
// generation & validation -> per-model metric scorecards. This is the
// library's primary public entry point; the examples and every Table/Figure
// bench are built on it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/feature_selection.hpp"
#include "data/aggregation.hpp"
#include "data/data_history.hpp"
#include "data/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/config.hpp"

namespace f2pm::core {

/// Pipeline parameters (every phase of Fig. 1 is tunable).
struct PipelineOptions {
  data::AggregationOptions aggregation;  ///< §III-B window + added metrics.
  double train_fraction = 0.7;
  /// When true, whole runs go to either the train or the validation side
  /// (no trajectory leakage); when false, rows are shuffled individually.
  bool split_by_run = false;
  std::uint64_t seed = 7;

  /// S-MAE tolerance as a fraction of the maximum observed RTTF (the paper
  /// evaluates Table II at a 10% threshold).
  double soft_mae_fraction = 0.10;

  /// Models to generate. Defaults to the paper's six; "lasso" expands into
  /// one model per λ in lasso_predictor_lambdas (the Table II rows).
  std::vector<std::string> models = {"linear", "m5p", "reptree",
                                     "lasso", "svm", "svm2"};
  std::vector<double> lasso_predictor_lambdas;  ///< Empty -> paper grid.

  /// §III-C feature selection: run the λ path and evaluate every model a
  /// second time on the surviving subset at selection_lambda. The phase is
  /// optional in Fig. 1; disable to train on all parameters only.
  bool run_feature_selection = true;
  std::vector<double> selection_lambdas;  ///< Empty -> paper grid.
  /// Subset used for the reduced models. At the paper's λ = 1e9 the
  /// reference study keeps ~7 memory-level and memory-slope features,
  /// mirroring the paper's Table I set (see EXPERIMENTS.md).
  double selection_lambda = 1e9;

  /// Train the per-model evaluations concurrently on a dedicated pool.
  /// Off by default: sequential training keeps Table III/IV timings clean.
  bool parallel_training = false;
  std::size_t parallel_threads = 0;  ///< 0 = hardware concurrency.

  /// Hyperparameter overrides forwarded to ml::make_model (keys like
  /// "svm.c", "reptree.max_depth").
  util::Config model_params;
};

/// One trained-and-validated model's outcome.
struct ModelOutcome {
  std::string display_name;        ///< e.g. "lasso-lambda-1000000000".
  ml::EvaluationReport report;
  std::vector<double> predicted;   ///< Per validation row (Fig. 5 series).
};

/// Everything the pipeline produced.
struct PipelineResult {
  data::Dataset dataset;            ///< Aggregated, labeled, all columns.
  data::Dataset train;
  data::Dataset validation;
  double soft_threshold = 0.0;      ///< Absolute S-MAE tolerance (seconds).

  std::optional<FeatureSelectionResult> selection;  ///< §III-C output.
  std::vector<std::size_t> selected_columns;  ///< Subset at selection_lambda.

  std::vector<ModelOutcome> using_all_features;
  std::vector<ModelOutcome> using_selected_features;  ///< Empty if disabled.
};

/// Runs the full workflow on a monitoring history. Throws
/// std::invalid_argument when the history yields no labeled datapoints.
PipelineResult run_pipeline(const data::DataHistory& history,
                            const PipelineOptions& options);

/// Model-generation phase only: evaluates `models` (with "lasso" expanded
/// over `lasso_lambdas`) on a prepared split. Exposed separately so the
/// benches can reuse one aggregation across many evaluations.
std::vector<ModelOutcome> evaluate_models(
    const data::Dataset& train, const data::Dataset& validation,
    const std::vector<std::string>& models,
    const std::vector<double>& lasso_lambdas, double soft_threshold,
    const util::Config& model_params, bool parallel = false,
    std::size_t parallel_threads = 0);

}  // namespace f2pm::core
