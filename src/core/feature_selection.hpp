// The Features Selection phase (paper §III-C): run Lasso Regularization
// over a grid of λ values on the aggregated training set, record which
// features survive at each λ (Fig. 4), and expose the surviving subsets as
// reduced training sets for the model-generation phase.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "ml/lasso.hpp"

namespace f2pm::core {

/// The outcome at one λ of the grid.
struct SelectionEntry {
  double lambda = 0.0;
  std::vector<std::size_t> selected;   ///< Surviving column indices.
  std::vector<double> weights;         ///< β weights of survivors.
  std::vector<std::string> names;      ///< Feature names of survivors.
};

/// Full regularization-path result.
struct FeatureSelectionResult {
  std::vector<SelectionEntry> entries;  ///< One per λ, in grid order.

  /// The entry for a given λ; throws std::out_of_range if absent.
  [[nodiscard]] const SelectionEntry& at_lambda(double lambda) const;
};

/// The paper's λ grid: 10^0, 10^1, ..., 10^9.
std::vector<double> paper_lambda_grid();

/// Runs the Lasso regularization path on the dataset's design matrix.
FeatureSelectionResult select_features(const data::Dataset& dataset,
                                       const std::vector<double>& lambdas,
                                       const ml::LassoOptions& options = {});

}  // namespace f2pm::core
