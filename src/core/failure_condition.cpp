#include "core/failure_condition.hpp"

#include <limits>

#include "util/string_util.hpp"

namespace f2pm::core {

FailureCondition::FailureCondition(
    std::function<bool(const Context&)> predicate, std::string description)
    : predicate_(std::move(predicate)), description_(std::move(description)) {}

FailureCondition FailureCondition::feature_above(data::FeatureId feature,
                                                 double threshold) {
  return FailureCondition(
      [feature, threshold](const Context& context) {
        return context.sample[feature] > threshold;
      },
      "(" + std::string(data::feature_name(feature)) + " > " +
          util::format_double(threshold, 6) + ")");
}

FailureCondition FailureCondition::feature_below(data::FeatureId feature,
                                                 double threshold) {
  return FailureCondition(
      [feature, threshold](const Context& context) {
        return context.sample[feature] < threshold;
      },
      "(" + std::string(data::feature_name(feature)) + " < " +
          util::format_double(threshold, 6) + ")");
}

FailureCondition FailureCondition::intergen_above(double threshold) {
  return FailureCondition(
      [threshold](const Context& context) {
        return context.intergen_time > threshold;
      },
      "(intergen > " + util::format_double(threshold, 6) + ")");
}

FailureCondition FailureCondition::never() {
  return FailureCondition([](const Context&) { return false; }, "(never)");
}

FailureCondition FailureCondition::operator&&(
    const FailureCondition& rhs) const {
  auto lhs_pred = predicate_;
  auto rhs_pred = rhs.predicate_;
  return FailureCondition(
      [lhs_pred, rhs_pred](const Context& context) {
        return lhs_pred(context) && rhs_pred(context);
      },
      "(" + description_ + " AND " + rhs.description_ + ")");
}

FailureCondition FailureCondition::operator||(
    const FailureCondition& rhs) const {
  auto lhs_pred = predicate_;
  auto rhs_pred = rhs.predicate_;
  return FailureCondition(
      [lhs_pred, rhs_pred](const Context& context) {
        return lhs_pred(context) || rhs_pred(context);
      },
      "(" + description_ + " OR " + rhs.description_ + ")");
}

bool FailureCondition::evaluate(const Context& context) const {
  return predicate_(context);
}

std::size_t first_failure_index(
    const FailureCondition& condition,
    const std::vector<data::RawDatapoint>& samples) {
  double previous_tgen = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double intergen = i == 0 ? 0.0 : samples[i].tgen - previous_tgen;
    previous_tgen = samples[i].tgen;
    if (condition.evaluate({samples[i], intergen})) return i;
  }
  return std::numeric_limits<std::size_t>::max();
}

}  // namespace f2pm::core
