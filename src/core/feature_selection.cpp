#include "core/feature_selection.hpp"

#include <cmath>
#include <stdexcept>

namespace f2pm::core {

const SelectionEntry& FeatureSelectionResult::at_lambda(double lambda) const {
  for (const auto& entry : entries) {
    if (entry.lambda == lambda) return entry;
  }
  throw std::out_of_range("FeatureSelectionResult: lambda not in grid");
}

std::vector<double> paper_lambda_grid() {
  std::vector<double> grid;
  grid.reserve(10);
  for (int exponent = 0; exponent <= 9; ++exponent) {
    grid.push_back(std::pow(10.0, exponent));
  }
  return grid;
}

FeatureSelectionResult select_features(const data::Dataset& dataset,
                                       const std::vector<double>& lambdas,
                                       const ml::LassoOptions& options) {
  const auto path = ml::lasso_path(dataset.x, dataset.y, lambdas, options);
  FeatureSelectionResult result;
  result.entries.reserve(path.size());
  for (const auto& step : path) {
    SelectionEntry entry;
    entry.lambda = step.lambda;
    entry.selected = step.selected;
    entry.weights.reserve(step.selected.size());
    entry.names.reserve(step.selected.size());
    for (std::size_t column : step.selected) {
      entry.weights.push_back(step.coefficients[column]);
      entry.names.push_back(dataset.feature_names[column]);
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

}  // namespace f2pm::core
