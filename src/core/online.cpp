#include "core/online.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/cascade.hpp"
#include "obs/metrics.hpp"

namespace f2pm::core {

namespace {

/// Registry handles are resolved once; updates are lock-free after that.
struct OnlineMetrics {
  obs::Counter& windows_scored;
  obs::Histogram& predict_seconds;

  static OnlineMetrics& get() {
    auto& registry = obs::Registry::global();
    static OnlineMetrics metrics{
        registry.counter("f2pm_core_windows_scored_total",
                         "Aggregation windows scored into RTTF predictions."),
        registry.histogram("f2pm_core_predict_seconds",
                           "Per-window model inference latency.",
                           obs::Histogram::default_latency_bounds())};
    return metrics;
  }
};

}  // namespace

OnlinePredictor::OnlinePredictor(std::shared_ptr<const ml::Regressor> model,
                                 data::AggregationOptions aggregation,
                                 std::vector<std::size_t> selected_columns,
                                 std::pmr::memory_resource* memory)
    : model_(std::move(model)),
      aggregation_(aggregation),
      selected_columns_(std::move(selected_columns)),
      window_(memory != nullptr ? memory
                                : std::pmr::get_default_resource()) {
  if (!model_ || !model_->is_fitted()) {
    throw std::invalid_argument("OnlinePredictor: model must be fitted");
  }
  cascade_ = dynamic_cast<const ml::CascadeRegressor*>(model_.get());
  if (!(aggregation_.window_seconds > 0.0)) {
    throw std::invalid_argument("OnlinePredictor: window_seconds must be > 0");
  }
  const std::size_t expected_width = selected_columns_.empty()
                                         ? data::kInputCount
                                         : selected_columns_.size();
  if (model_->num_inputs() != expected_width) {
    throw std::invalid_argument(
        "OnlinePredictor: model input width does not match the feature "
        "layout (trained on a different column subset?)");
  }
  for (std::size_t column : selected_columns_) {
    if (column >= data::kInputCount) {
      throw std::invalid_argument(
          "OnlinePredictor: selected column out of range");
    }
  }
  row_scratch_.reserve(selected_columns_.size());
}

void OnlinePredictor::reserve_window(std::size_t samples) {
  if (samples > window_.capacity()) window_.reserve(samples);
}

std::optional<OnlinePrediction> OnlinePredictor::flush() {
  if (!window_open_) return std::nullopt;
  std::optional<OnlinePrediction> emitted;
  if (window_.size() >= aggregation_.min_samples_per_window) {
    emitted = aggregate_and_predict();
  }
  if (!window_.empty()) boundary_tgen_ = window_.back().tgen;
  window_.clear();
  window_open_ = false;
  return emitted;
}

void OnlinePredictor::reset() {
  window_.clear();
  window_open_ = false;
  previous_tgen_.reset();
  boundary_tgen_.reset();
  window_start_ = 0.0;
  window_end_ = 0.0;
}

OnlinePrediction OnlinePredictor::aggregate_and_predict() {
  // The per-window math is the exact function data::aggregate applies
  // offline (vectorized means, Eq. (1) slopes, inter-generation metrics
  // including the boundary gap into the window) — shared code, not a
  // mirror, so the two paths cannot drift.
  data::AggregatedDatapoint point;
  point.window_start = window_start_;
  point.window_end = window_end_;
  data::compute_window_features(window_.data(), window_.size(),
                                boundary_tgen_ ? &*boundary_tgen_ : nullptr,
                                point);
  const auto full_row = data::to_input_vector(point);
  OnlinePrediction prediction;
  prediction.window_end = window_end_;
  prediction.window_samples = window_.size();
  {
    OnlineMetrics& metrics = OnlineMetrics::get();
    obs::ScopedTimer timer(metrics.predict_seconds);
    const auto score = [&](std::span<const double> row) {
      if (cascade_ != nullptr) {
        // Cascade path: screen cost only unless the screen promotes the
        // window to the full model; the routing decision is surfaced.
        const auto traced = cascade_->predict_row_traced(row);
        prediction.rttf = traced.rttf;
        prediction.promoted = traced.promoted;
      } else {
        prediction.rttf = model_->predict_row(row);
      }
    };
    if (selected_columns_.empty()) {
      score(full_row);
    } else {
      row_scratch_.clear();  // Capacity reserved at construction.
      for (std::size_t column : selected_columns_) {
        row_scratch_.push_back(full_row[column]);
      }
      score(row_scratch_);
    }
    metrics.windows_scored.add(1);
  }
  ++windows_emitted_;
  return prediction;
}

std::optional<OnlinePrediction> OnlinePredictor::observe(
    const data::RawDatapoint& point) {
  if (previous_tgen_ && point.tgen < *previous_tgen_) {
    throw std::invalid_argument(
        "OnlinePredictor: datapoints must arrive in time order");
  }
  previous_tgen_ = point.tgen;

  const double width = aggregation_.window_seconds;
  const double window_id = std::floor(point.tgen / width);
  const double start = window_id * width;

  std::optional<OnlinePrediction> emitted;
  if (window_open_ && start > window_start_) {
    // The previous window just closed.
    if (window_.size() >= aggregation_.min_samples_per_window) {
      emitted = aggregate_and_predict();
    }
    if (!window_.empty()) boundary_tgen_ = window_.back().tgen;
    window_.clear();
    window_open_ = false;
  }
  if (!window_open_) {
    window_start_ = start;
    window_end_ = start + width;
    window_open_ = true;
  }
  window_.push_back(point);
  return emitted;
}

RejuvenationAdvisor::RejuvenationAdvisor(AdvisorOptions options)
    : options_(options) {
  if (options_.consecutive_windows == 0) {
    throw std::invalid_argument(
        "RejuvenationAdvisor: consecutive_windows must be > 0");
  }
}

bool RejuvenationAdvisor::update(const OnlinePrediction& prediction) {
  if (triggered_) return true;
  if (prediction.rttf < options_.lead_seconds) {
    if (++below_count_ >= options_.consecutive_windows) {
      triggered_ = true;
      trigger_time_ = prediction.window_end;
    }
  } else {
    below_count_ = 0;
  }
  return triggered_;
}

void RejuvenationAdvisor::reset() {
  below_count_ = 0;
  triggered_ = false;
  trigger_time_ = 0.0;
}

}  // namespace f2pm::core
