// Hot-swappable model storage for the prediction service.
//
// The store holds one immutable ScoringModel snapshot behind a
// shared_ptr; readers (scoring tasks on the thread pool) take a reference
// under the lock and then score lock-free against a model that can never
// change or half-load underneath them. Swapping in a new model — via the
// API or the watched-file poll — builds and validates the complete
// replacement first and only then publishes it, so sessions always see
// either the old or the new model, never a torn state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace f2pm::serve {

/// One fully-loaded, immutable scoring configuration.
struct ScoringModel {
  std::shared_ptr<const ml::Regressor> regressor;
  /// Lasso-selected input columns the model was trained on; empty means
  /// the full data::kInputCount layout.
  std::vector<std::size_t> selected_columns;
  std::uint32_t version = 0;  ///< Monotonic swap counter (1 = first model).
  std::string source;         ///< Provenance ("api", "file:<path>").
};

/// Thread-safe holder of the active ScoringModel.
class ModelStore {
 public:
  ModelStore() = default;

  /// Publishes a new model. Validates that it is fitted and that its
  /// input width matches the aggregation layout (or `selected_columns`);
  /// throws std::invalid_argument otherwise, leaving the active model
  /// untouched. Returns the new version.
  std::uint32_t swap(std::shared_ptr<const ml::Regressor> regressor,
                     std::vector<std::size_t> selected_columns = {},
                     std::string source = "api");

  /// Loads a model archive written by ml::save_model and publishes it.
  /// The file is parsed completely before the swap; on any error the
  /// previous model stays active and the exception propagates.
  std::uint32_t load_file(const std::string& path,
                          std::vector<std::size_t> selected_columns = {});

  /// The active model, or nullptr when none was ever published.
  [[nodiscard]] std::shared_ptr<const ScoringModel> current() const;

  /// Version of the active model (0 = none).
  [[nodiscard]] std::uint32_t version() const;

  /// Registers `path` for mtime-based reload; poll_watch() re-loads it
  /// whenever the file changes. Writers should replace the file
  /// atomically (write to a temp file, then rename); a half-written file
  /// fails to parse and is retried on the next poll, never published.
  void watch_file(const std::string& path,
                  std::vector<std::size_t> selected_columns = {});

  [[nodiscard]] bool has_watch() const;

  /// Checks the watched file and hot-swaps it when its mtime/size
  /// changed. Returns true when a new model was published; load errors
  /// are swallowed (logged) so a torn write cannot take the service down.
  bool poll_watch();

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ScoringModel> current_;
  std::uint32_t next_version_ = 1;

  std::string watch_path_;
  std::vector<std::size_t> watch_columns_;
  std::int64_t watch_mtime_ns_ = -1;
  std::int64_t watch_size_ = -1;
};

}  // namespace f2pm::serve
