// Hot-swappable model storage for the prediction service.
//
// The store holds one immutable ScoringModel snapshot behind an atomic
// shared_ptr (RCU-style: writers copy-and-publish, readers only ever see
// a complete snapshot). The steady-state read path is version(), a single
// acquire load of an atomic counter — scoring tasks across every reactor
// shard gate on it and call current() only when the version actually
// moved, so a hot swap never stalls scoring and scoring never delays a
// swap. Swapping in a new model — via the API or the watched-file poll —
// builds and validates the complete replacement first and only then
// publishes it, so sessions always see either the old or the new model,
// never a torn state; the writer-side mutex serializes swappers and the
// watch bookkeeping only, never readers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace f2pm::serve {

/// One fully-loaded, immutable scoring configuration.
struct ScoringModel {
  std::shared_ptr<const ml::Regressor> regressor;
  /// Lasso-selected input columns the model was trained on; empty means
  /// the full data::kInputCount layout.
  std::vector<std::size_t> selected_columns;
  std::uint32_t version = 0;  ///< Monotonic swap counter (1 = first model).
  std::string source;         ///< Provenance ("api", "file:<path>").
};

/// Thread-safe holder of the active ScoringModel.
class ModelStore {
 public:
  ModelStore() = default;

  /// Publishes a new model. Validates that it is fitted and that its
  /// input width matches the aggregation layout (or `selected_columns`);
  /// throws std::invalid_argument otherwise, leaving the active model
  /// untouched. Returns the new version.
  std::uint32_t swap(std::shared_ptr<const ml::Regressor> regressor,
                     std::vector<std::size_t> selected_columns = {},
                     std::string source = "api");

  /// Loads a model archive written by ml::save_model and publishes it.
  /// The file is staged fully into memory and parsed completely before
  /// the swap, so a torn or concurrent write can only fail the parse; on
  /// any error the previous model stays active, the failure is counted in
  /// f2pm_serve_swap_failures_total, and the exception propagates.
  std::uint32_t load_file(const std::string& path,
                          std::vector<std::size_t> selected_columns = {});

  /// The active model, or nullptr when none was ever published. Lock-free
  /// with respect to swappers: an atomic shared_ptr load.
  [[nodiscard]] std::shared_ptr<const ScoringModel> current() const;

  /// Version of the active model (0 = none). One atomic acquire load —
  /// the per-batch steady-state check on every scoring path.
  [[nodiscard]] std::uint32_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Registers `path` for mtime-based reload; poll_watch() re-loads it
  /// whenever the file changes. Writers should replace the file
  /// atomically (write to a temp file, then rename); a half-written file
  /// fails to parse and is retried on the next poll, never published.
  void watch_file(const std::string& path,
                  std::vector<std::size_t> selected_columns = {});

  [[nodiscard]] bool has_watch() const;

  /// Checks the watched file and hot-swaps it when its mtime/size
  /// changed. Returns true when a new model was published; load errors
  /// are swallowed (logged) so a torn write cannot take the service down.
  bool poll_watch();

 private:
  /// Serializes writers (swap, watch bookkeeping); readers never take it.
  mutable std::mutex mutex_;
  /// RCU publication point: complete snapshots only, never torn.
  std::atomic<std::shared_ptr<const ScoringModel>> current_;
  /// Published after current_ (release) so a reader that observes the new
  /// version is guaranteed to load the new (or an even newer) snapshot.
  std::atomic<std::uint32_t> version_{0};
  std::uint32_t next_version_ = 1;

  std::string watch_path_;
  std::vector<std::size_t> watch_columns_;
  std::int64_t watch_mtime_ns_ = -1;
  std::int64_t watch_size_ = -1;
};

}  // namespace f2pm::serve
