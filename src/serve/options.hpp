// Shared parameter/stat types of the prediction service, split out so the
// shard implementation (serve/shard.hpp) and the orchestrating service
// (serve/service.hpp) can both see them without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "net/poller.hpp"

namespace f2pm::serve {

/// Service parameterization.
struct ServiceOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port()).
  net::Poller::Backend backend = net::Poller::default_backend();

  /// Reactor shard count: each shard runs its own event loop, session
  /// registry and scoring pool so the steady-state path never crosses a
  /// shard boundary. 0 = one shard per hardware thread; 1 (the default)
  /// reproduces the single-reactor service exactly.
  std::size_t shards = 1;

  /// How connections reach their shard when shards > 1 (single-shard
  /// services always accept directly, whatever this says).
  enum class AcceptMode {
    /// Every shard binds its own SO_REUSEPORT listener on the one agreed
    /// port; the kernel spreads connections by 4-tuple hash. Zero
    /// cross-shard work on accept.
    kReusePort,
    /// Shard 0 owns the only listener and hands accepted fds to shards
    /// round-robin — deterministic placement for tests, and the fallback
    /// for kernels without working SO_REUSEPORT balancing.
    kHandoff,
  };
  AcceptMode accept_mode = AcceptMode::kReusePort;

  std::size_t max_sessions = 256;  ///< Admission control: excess connects
                                   ///< are closed immediately (enforced
                                   ///< service-wide across shards).
  /// Hard cap on one session's unsent reply bytes; a client that stops
  /// reading its predictions is evicted once it is exceeded.
  std::size_t max_outbound_bytes = 4u << 20;
  /// Backpressure bound on one session's unscored datapoints: reading
  /// from the client pauses above this and resumes at half of it.
  std::size_t max_pending_datapoints = 4096;

  double idle_timeout_seconds = 0.0;   ///< 0 disables idle eviction.
  double drain_timeout_seconds = 5.0;  ///< stop(): max time to flush.
  double model_poll_seconds = 1.0;     ///< Watched-file check cadence.

  /// Prometheus scrape endpoint: -1 disables it, 0 binds an ephemeral
  /// port (read back via metrics_port()), >0 binds that port. Served from
  /// shard 0's event loop — GET /metrics (any request, actually) returns
  /// the global obs registry as text exposition.
  int metrics_port = -1;

  /// Scoring workers across the whole service; each shard gets its own
  /// pool of max(1, scoring_threads / shards) so scoring dispatch never
  /// contends across shards. 0 = hardware concurrency.
  std::size_t scoring_threads = 0;

  /// Streaming aggregation layout; must match what the served models were
  /// trained on.
  data::AggregationOptions aggregation;
  core::AdvisorOptions advisor;  ///< Per-session rejuvenation policy.
};

/// Monotonic service counters. stats() aggregates a consistent-enough
/// snapshot across shards (each field is a sum of per-shard relaxed
/// atomics); shard_stats() exposes the per-shard views.
struct ServiceStats {
  std::size_t sessions_active = 0;
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;  ///< Turned away at max_sessions.
  std::uint64_t sessions_evicted = 0;   ///< Protocol/backpressure/idle.
  std::uint64_t datapoints_received = 0;
  std::uint64_t predictions_sent = 0;
  std::uint64_t protocol_errors = 0;
  /// Disconnect taxonomy: how sessions ended. A bounced or faulty client
  /// shows up as truncated/reset, never as a protocol error.
  std::uint64_t disconnects_clean = 0;      ///< Bye / clean EOF completion.
  std::uint64_t disconnects_truncated = 0;  ///< EOF in the middle of a frame.
  std::uint64_t disconnects_reset = 0;      ///< Socket error, hangup or RST.
  std::uint32_t model_version = 0;  ///< Active ModelStore version.
};

}  // namespace f2pm::serve
