// Shared parameter/stat types of the prediction service, split out so the
// shard implementation (serve/shard.hpp) and the orchestrating service
// (serve/service.hpp) can both see them without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "data/data_history.hpp"
#include "net/poller.hpp"

namespace f2pm::serve {

/// A completed, crash-labeled run exported by the serve tier: a session's
/// datapoint stream from (re)start up to the FailEvent that ended it.
/// This is the raw material of the continuous-learning loop (src/learn) —
/// every exported run carries provenance back to the producing session.
struct CompletedRun {
  data::Run run;          ///< Samples + fail event; run.failed is true.
  std::string client_id;  ///< Hello id of the session ("" for legacy).
  std::size_t shard = 0;  ///< Reactor shard that served the session.
};

/// Consumer of completed runs (ServiceOptions::run_sink). Invoked on the
/// owning shard's event-loop thread, possibly concurrently across shards,
/// so implementations must be thread-safe and cheap — hand the run off to
/// another thread (the learn trainer queues it and returns immediately).
using RunSink = std::function<void(CompletedRun)>;

/// Service parameterization.
struct ServiceOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port()).
  net::Poller::Backend backend = net::Poller::default_backend();

  /// Reactor shard count: each shard runs its own event loop, session
  /// registry and scoring pool so the steady-state path never crosses a
  /// shard boundary. 0 = one shard per hardware thread; 1 (the default)
  /// reproduces the single-reactor service exactly.
  std::size_t shards = 1;

  /// How connections reach their shard when shards > 1 (single-shard
  /// services always accept directly, whatever this says).
  enum class AcceptMode {
    /// Every shard binds its own SO_REUSEPORT listener on the one agreed
    /// port; the kernel spreads connections by 4-tuple hash. Zero
    /// cross-shard work on accept.
    kReusePort,
    /// Shard 0 owns the only listener and hands accepted fds to shards
    /// round-robin — deterministic placement for tests, and the fallback
    /// for kernels without working SO_REUSEPORT balancing.
    kHandoff,
  };
  AcceptMode accept_mode = AcceptMode::kReusePort;

  std::size_t max_sessions = 256;  ///< Admission control: excess connects
                                   ///< are closed immediately (enforced
                                   ///< service-wide across shards).
  /// Hard cap on one session's unsent reply bytes; a client that stops
  /// reading its predictions is evicted once it is exceeded.
  std::size_t max_outbound_bytes = 4u << 20;
  /// Backpressure bound on one session's unscored datapoints: reading
  /// from the client pauses above this and resumes at half of it.
  std::size_t max_pending_datapoints = 4096;

  double idle_timeout_seconds = 0.0;   ///< 0 disables idle eviction.
  double drain_timeout_seconds = 5.0;  ///< stop(): max time to flush.
  double model_poll_seconds = 1.0;     ///< Watched-file check cadence.

  /// Prometheus scrape endpoint: -1 disables it, 0 binds an ephemeral
  /// port (read back via metrics_port()), >0 binds that port. Served from
  /// shard 0's event loop — GET /metrics (any request, actually) returns
  /// the global obs registry as text exposition.
  int metrics_port = -1;

  /// Scoring workers across the whole service; each shard gets its own
  /// pool of max(1, scoring_threads / shards) so scoring dispatch never
  /// contends across shards. 0 = hardware concurrency.
  std::size_t scoring_threads = 0;

  /// Expected datapoints per aggregation window: per-session hot buffers
  /// (inbox, scoring batch, run-export buffer, the predictor's window) are
  /// pre-sized to this at Hello so steady-state traffic never grows them.
  /// Buffers still grow on demand past it, paying for any new high-water
  /// mark at most once.
  std::size_t window_reserve_samples = 1024;

  /// Streaming aggregation layout; must match what the served models were
  /// trained on.
  data::AggregationOptions aggregation;
  core::AdvisorOptions advisor;  ///< Per-session rejuvenation policy.

  /// When set, every run a session completes (a FailEvent closing a
  /// non-empty datapoint stream) is exported as a crash-labeled
  /// CompletedRun — the ingest hook of the continuous-learning loop.
  /// Unset (the default) costs nothing: no per-session sample retention.
  RunSink run_sink;
  /// Per-run cap on retained raw samples while a sink is set; a run that
  /// exceeds it is not exported (counted in
  /// f2pm_serve_runs_export_dropped_total) so a never-failing stream
  /// cannot grow an unbounded buffer.
  std::size_t run_export_max_samples = 100'000;
};

/// Monotonic service counters. stats() aggregates a consistent-enough
/// snapshot across shards (each field is a sum of per-shard relaxed
/// atomics); shard_stats() exposes the per-shard views.
struct ServiceStats {
  std::size_t sessions_active = 0;
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;  ///< Turned away at max_sessions.
  std::uint64_t sessions_evicted = 0;   ///< Protocol/backpressure/idle.
  std::uint64_t datapoints_received = 0;
  std::uint64_t predictions_sent = 0;
  /// Windows a cascade model promoted to its full stage (0 for
  /// non-cascade models); promotion rate = windows_promoted /
  /// predictions_sent.
  std::uint64_t windows_promoted = 0;
  std::uint64_t protocol_errors = 0;
  /// Disconnect taxonomy: how sessions ended. A bounced or faulty client
  /// shows up as truncated/reset, never as a protocol error.
  std::uint64_t disconnects_clean = 0;      ///< Bye / clean EOF completion.
  std::uint64_t disconnects_truncated = 0;  ///< EOF in the middle of a frame.
  std::uint64_t disconnects_reset = 0;      ///< Socket error, hangup or RST.
  std::uint32_t model_version = 0;  ///< Active ModelStore version.
};

}  // namespace f2pm::serve
