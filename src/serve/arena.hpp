// Per-shard session arena: the memory resource behind every session's hot
// buffers (aggregation window, inbox, scoring batch, reply scratch).
//
// Why it exists: the per-datapoint serve path must be allocation-free in
// steady state. All hot containers are pmr vectors backed by this arena
// and retain their capacity across windows, batches and (via the pool's
// free lists) across session lifetimes — the arena is touched only when a
// buffer first warms up, grows past its high-water mark, or a session is
// created/destroyed. The counters make that claim testable: a steady-state
// burst must leave `allocations()` unchanged (see tests/test_hotpath_alloc).
//
// Thread safety: the underlying pool is a synchronized_pool_resource
// because buffer growth can happen on a scoring-pool thread (the predictor
// window) concurrently with session setup/teardown on the loop thread.
// Neither happens per datapoint, so the pool's internal lock is off the
// hot path by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory_resource>

namespace f2pm::serve {

/// Counting front over a synchronized pool resource. One per shard.
class SessionArena final : public std::pmr::memory_resource {
 public:
  SessionArena() = default;
  SessionArena(const SessionArena&) = delete;
  SessionArena& operator=(const SessionArena&) = delete;

  /// Allocation requests served so far (container growth, not pool slab
  /// refills). Zero new requests across an interval proves the interval
  /// ran allocation-free against this arena.
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deallocations() const noexcept {
    return deallocations_.load(std::memory_order_relaxed);
  }
  /// Total bytes requested (not holed-up pool capacity).
  [[nodiscard]] std::uint64_t bytes_requested() const noexcept {
    return bytes_requested_.load(std::memory_order_relaxed);
  }

 private:
  void* do_allocate(std::size_t bytes, std::size_t alignment) override {
    allocations_.fetch_add(1, std::memory_order_relaxed);
    bytes_requested_.fetch_add(bytes, std::memory_order_relaxed);
    return pool_.allocate(bytes, alignment);
  }

  void do_deallocate(void* p, std::size_t bytes,
                     std::size_t alignment) override {
    deallocations_.fetch_add(1, std::memory_order_relaxed);
    pool_.deallocate(p, bytes, alignment);
  }

  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  std::pmr::synchronized_pool_resource pool_;
  std::atomic<std::uint64_t> allocations_{0};
  std::atomic<std::uint64_t> deallocations_{0};
  std::atomic<std::uint64_t> bytes_requested_{0};
};

}  // namespace f2pm::serve
