#include "serve/model_store.hpp"

#include <sys/stat.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "data/aggregation.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace f2pm::serve {

namespace {

struct StoreMetrics {
  obs::Counter& hot_swaps;
  obs::Counter& swap_failures;
  obs::Gauge& model_version;

  static StoreMetrics& get() {
    auto& registry = obs::Registry::global();
    static StoreMetrics metrics{
        registry.counter("f2pm_serve_model_hot_swaps_total",
                         "Models published into the store (API or "
                         "watched-file reload)."),
        registry.counter("f2pm_serve_swap_failures_total",
                         "Model publish attempts rejected (archive open/"
                         "parse or validation failure); the previous model "
                         "stayed active."),
        registry.gauge("f2pm_serve_model_version",
                       "Version of the active scoring model (0 = none).")};
    return metrics;
  }
};

void validate(const ml::Regressor& regressor,
              const std::vector<std::size_t>& selected_columns) {
  if (!regressor.is_fitted()) {
    throw std::invalid_argument("ModelStore: model must be fitted");
  }
  const std::size_t expected = selected_columns.empty()
                                   ? data::kInputCount
                                   : selected_columns.size();
  if (regressor.num_inputs() != expected) {
    throw std::invalid_argument(
        "ModelStore: model input width " +
        std::to_string(regressor.num_inputs()) +
        " does not match the feature layout (expected " +
        std::to_string(expected) + ")");
  }
  for (std::size_t column : selected_columns) {
    if (column >= data::kInputCount) {
      throw std::invalid_argument("ModelStore: selected column out of range");
    }
  }
}

}  // namespace

std::uint32_t ModelStore::swap(std::shared_ptr<const ml::Regressor> regressor,
                               std::vector<std::size_t> selected_columns,
                               std::string source) {
  try {
    if (!regressor) {
      throw std::invalid_argument("ModelStore: null model");
    }
    validate(*regressor, selected_columns);
  } catch (...) {
    // One failed publish attempt = one tick, whatever the rejection
    // reason. load_file counts only its pre-swap (open/read/parse) stage,
    // so a rejected archive is never double-counted.
    StoreMetrics::get().swap_failures.add(1);
    throw;
  }
  auto next = std::make_shared<ScoringModel>();
  next->regressor = std::move(regressor);
  next->selected_columns = std::move(selected_columns);
  next->source = std::move(source);
  std::uint32_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    next->version = next_version_++;
    version = next->version;
    // RCU publish: the complete snapshot first, then the version gate the
    // scoring hot path polls — a reader that observes the new version is
    // guaranteed to load the new snapshot (or a newer one).
    current_.store(std::move(next), std::memory_order_release);
    version_.store(version, std::memory_order_release);
  }
  StoreMetrics& metrics = StoreMetrics::get();
  metrics.hot_swaps.add(1);
  metrics.model_version.set(static_cast<double>(version));
  return version;
}

std::uint32_t ModelStore::load_file(const std::string& path,
                                    std::vector<std::size_t> selected_columns) {
  std::shared_ptr<const ml::Regressor> model;
  try {
    // Stage the whole archive into memory, then parse the staged copy.
    // A writer racing the read (torn write, truncation mid-load) can only
    // corrupt the staged bytes — which then fail to parse — never leave a
    // half-deserialized model anywhere near the publish path.
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("ModelStore: cannot open " + path);
    }
    std::ostringstream staged;
    staged << in.rdbuf();
    if (in.bad()) {
      throw std::runtime_error("ModelStore: read failed on " + path);
    }
    std::istringstream parse(std::move(staged).str());
    model = ml::load_model(parse);
  } catch (...) {
    StoreMetrics::get().swap_failures.add(1);
    throw;
  }
  return swap(std::move(model), std::move(selected_columns), "file:" + path);
}

std::shared_ptr<const ScoringModel> ModelStore::current() const {
  return current_.load(std::memory_order_acquire);
}

void ModelStore::watch_file(const std::string& path,
                            std::vector<std::size_t> selected_columns) {
  std::lock_guard<std::mutex> lock(mutex_);
  watch_path_ = path;
  watch_columns_ = std::move(selected_columns);
  watch_mtime_ns_ = -1;
  watch_size_ = -1;
}

bool ModelStore::has_watch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !watch_path_.empty();
}

bool ModelStore::poll_watch() {
  std::string path;
  std::vector<std::size_t> columns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (watch_path_.empty()) return false;
    path = watch_path_;
    columns = watch_columns_;
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return false;  // not there (yet)
  const auto mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                            1'000'000'000 +
                        st.st_mtim.tv_nsec;
  const auto size = static_cast<std::int64_t>(st.st_size);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (mtime_ns == watch_mtime_ns_ && size == watch_size_) return false;
  }
  try {
    load_file(path, columns);
  } catch (const std::exception& e) {
    // Likely a non-atomic writer caught mid-write: keep the active model
    // and retry on the next poll (the recorded mtime is not advanced).
    F2PM_LOG(kWarn, "serve") << "model reload of " << path
                             << " failed: " << e.what();
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  watch_mtime_ns_ = mtime_ns;
  watch_size_ = size;
  return true;
}

}  // namespace f2pm::serve
