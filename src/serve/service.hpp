// f2pm_serve: a multi-session RTTF prediction service (the deployable
// form of the paper's Feature Monitor Server + online predictor).
//
// Architecture: N independent reactor shards (serve/shard.hpp), each a
// complete event loop owning a disjoint slice of the session space —
// its own Poller, SessionRegistry, inbox backpressure, idle eviction and
// scoring ThreadPool. The steady-state accept→decode→aggregate→score→
// reply path is entirely shard-local; the only cross-shard state is
// lock-free (the admission counter, the ModelStore's RCU version gate
// and the sharded-atomic obs metrics). With shards = 1 (the default)
// the service behaves exactly like the historical single-reactor build.
//
// Connection placement: with AcceptMode::kReusePort every shard binds
// its own SO_REUSEPORT listener on one agreed port and the kernel
// spreads connections; with kHandoff shard 0 owns the only listener and
// round-robins accepted fds over the shards (deterministic placement).
//
// Operational guards: service-wide max-session admission, bounded
// per-session inboxes, outbound-queue caps, idle timeouts, per-shard
// eviction of protocol violators, and a graceful drain on stop() that
// flushes every open aggregation window on every shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/model_store.hpp"
#include "serve/options.hpp"
#include "serve/shard.hpp"

namespace f2pm::serve {

/// Multi-reactor (sharded) RTTF prediction server.
class PredictionService {
 public:
  /// Binds the listeners and starts every shard's event loop + scoring
  /// pool. The store may start empty (sessions are ingest-only until a
  /// model is swapped in). Throws std::runtime_error when the port
  /// cannot be bound (including when SO_REUSEPORT is unavailable and
  /// shards > 1 with AcceptMode::kReusePort).
  PredictionService(ServiceOptions options, std::shared_ptr<ModelStore> store);
  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;
  ~PredictionService();

  /// The one client-facing port every shard listener agreed on. Correct
  /// before start: with port 0 the first listener's ephemeral pick is
  /// read back and all remaining shards bind that exact port.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Bound metrics port, or 0 when the endpoint is disabled. Served from
  /// shard 0's loop.
  [[nodiscard]] std::uint16_t metrics_port() const {
    return shards_.empty() ? 0 : shards_.front()->metrics_port();
  }

  [[nodiscard]] ModelStore& model_store() { return *store_; }

  /// Number of reactor shards actually running (>= 1).
  [[nodiscard]] std::size_t shards() const { return shards_.size(); }

  /// Cross-shard aggregate: each counter is the sum of the per-shard
  /// relaxed atomics (monotonic, but not a single-instant snapshot).
  [[nodiscard]] ServiceStats stats() const;

  /// Per-shard counter snapshots, indexed by shard.
  [[nodiscard]] std::vector<ServiceStats> shard_stats() const;

  /// Graceful shutdown: every shard stops accepting, drains its scoring
  /// inboxes and flushes outbound predictions (up to
  /// drain_timeout_seconds, concurrently across shards), closes its
  /// sessions, then the loops and scoring pools are joined. Idempotent.
  void stop();

 private:
  ServiceOptions options_;
  std::shared_ptr<ModelStore> store_;
  std::uint16_t port_ = 0;

  /// Service-wide active-session count, CAS-reserved on accept.
  std::atomic<std::size_t> admission_{0};

  std::vector<std::unique_ptr<ServiceShard>> shards_;
  bool stopped_ = false;
};

}  // namespace f2pm::serve
