// f2pm_serve: a multi-session RTTF prediction service (the deployable
// form of the paper's Feature Monitor Server + online predictor).
//
// Architecture: one event-loop thread drives an epoll (poll-fallback)
// readiness loop over non-blocking TCP sessions. Frame parsing is the
// byte-incremental net::FrameDecoder shared with the legacy blocking
// path. Scoring is offloaded to a parallel::ThreadPool: each session's
// datapoints queue in an inbox and are scored in order by at most one
// task at a time against an immutable ModelStore snapshot, so model
// hot-swaps can never expose a half-loaded model. Completed predictions
// come back to the loop through a mutex-protected completion queue plus a
// self-pipe wakeup and are flushed through per-connection outbound
// queues.
//
// Operational guards: max-session admission control, bounded per-session
// inbox (reads pause while a client is too far ahead of scoring), a hard
// cap on the outbound queue (clients that stop reading their predictions
// are evicted), idle timeouts, eviction of protocol-violating clients
// without disturbing others, and a graceful drain on stop() that keeps
// flushing queued predictions until a deadline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"
#include "data/aggregation.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/model_store.hpp"
#include "serve/session.hpp"

namespace f2pm::serve {

/// Service parameterization.
struct ServiceOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port()).
  net::Poller::Backend backend = net::Poller::default_backend();

  std::size_t max_sessions = 256;  ///< Admission control: excess connects
                                   ///< are closed immediately.
  /// Hard cap on one session's unsent reply bytes; a client that stops
  /// reading its predictions is evicted once it is exceeded.
  std::size_t max_outbound_bytes = 4u << 20;
  /// Backpressure bound on one session's unscored datapoints: reading
  /// from the client pauses above this and resumes at half of it.
  std::size_t max_pending_datapoints = 4096;

  double idle_timeout_seconds = 0.0;   ///< 0 disables idle eviction.
  double drain_timeout_seconds = 5.0;  ///< stop(): max time to flush.
  double model_poll_seconds = 1.0;     ///< Watched-file check cadence.

  /// Prometheus scrape endpoint: -1 disables it, 0 binds an ephemeral
  /// port (read back via metrics_port()), >0 binds that port. Served from
  /// the same event loop — GET /metrics (any request, actually) returns
  /// the global obs registry as text exposition.
  int metrics_port = -1;

  std::size_t scoring_threads = 0;  ///< 0 = hardware concurrency.

  /// Streaming aggregation layout; must match what the served models were
  /// trained on.
  data::AggregationOptions aggregation;
  core::AdvisorOptions advisor;  ///< Per-session rejuvenation policy.
};

/// Monotonic service counters (a consistent snapshot under one lock).
struct ServiceStats {
  std::size_t sessions_active = 0;
  std::uint64_t sessions_accepted = 0;
  std::uint64_t sessions_rejected = 0;  ///< Turned away at max_sessions.
  std::uint64_t sessions_evicted = 0;   ///< Protocol/backpressure/idle.
  std::uint64_t datapoints_received = 0;
  std::uint64_t predictions_sent = 0;
  std::uint64_t protocol_errors = 0;
  /// Disconnect taxonomy: how sessions ended. A bounced or faulty client
  /// shows up as truncated/reset, never as a protocol error.
  std::uint64_t disconnects_clean = 0;      ///< Bye / clean EOF completion.
  std::uint64_t disconnects_truncated = 0;  ///< EOF in the middle of a frame.
  std::uint64_t disconnects_reset = 0;      ///< Socket error, hangup or RST.
  std::uint32_t model_version = 0;  ///< Active ModelStore version.
};

/// Multi-session epoll-based RTTF prediction server.
class PredictionService {
 public:
  /// Binds the port and starts the event loop + scoring pool. The store
  /// may start empty (sessions are ingest-only until a model is swapped
  /// in). Throws std::runtime_error when the port cannot be bound.
  PredictionService(ServiceOptions options, std::shared_ptr<ModelStore> store);
  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;
  ~PredictionService();

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Bound metrics port, or 0 when the endpoint is disabled.
  [[nodiscard]] std::uint16_t metrics_port() const {
    return metrics_listener_ ? metrics_listener_->port() : 0;
  }

  [[nodiscard]] ModelStore& model_store() { return *store_; }

  [[nodiscard]] ServiceStats stats() const;

  /// Graceful shutdown: stop accepting, drain scoring inboxes and flush
  /// outbound predictions (up to drain_timeout_seconds), close all
  /// sessions, then join the loop and the scoring pool. Idempotent.
  void stop();

 private:
  struct Completion {
    std::shared_ptr<Session> session;
    std::vector<std::uint8_t> reply_bytes;  ///< Encoded Prediction frames.
    std::size_t predictions = 0;
  };

  /// One plain-HTTP scrape connection on the metrics port. Request bytes
  /// are read until a blank line (or EOF), then the exposition is written
  /// and the connection closed — enough HTTP for curl and Prometheus.
  struct MetricsConn {
    explicit MetricsConn(net::TcpStream stream_in)
        : stream(std::move(stream_in)) {}
    net::TcpStream stream;
    std::string request;
    std::string response;  ///< Non-empty once the reply is being sent.
    std::size_t sent = 0;
  };

  /// How a session's transport ended (see ServiceStats).
  enum class DisconnectKind { kClean, kTruncated, kReset };

  void note_disconnect(DisconnectKind kind);
  void run_loop();
  void wake();
  void handle_accept();
  void handle_readable(const std::shared_ptr<Session>& session);
  bool process_buffered_frames(const std::shared_ptr<Session>& session);
  void handle_writable(const std::shared_ptr<Session>& session);
  bool handle_frame(const std::shared_ptr<Session>& session,
                    net::Frame frame);
  void dispatch_scoring(const std::shared_ptr<Session>& session);
  void score_batch(const std::shared_ptr<Session>& session,
                   std::vector<InboxItem> batch);
  void drain_completions();
  void queue_reply(const std::shared_ptr<Session>& session,
                   const std::vector<std::uint8_t>& bytes);
  void update_write_interest(const std::shared_ptr<Session>& session);
  void finish_if_drained(const std::shared_ptr<Session>& session);
  void close_session(const std::shared_ptr<Session>& session, bool evicted,
                     const std::string& reason);
  void evict_idle_sessions();
  void handle_metrics_accept();
  void handle_metrics_event(int fd, const net::Poller::Event& event);
  void close_metrics_conn(int fd);
  void shutdown_metrics_endpoint();

  ServiceOptions options_;
  std::shared_ptr<ModelStore> store_;

  net::TcpListener listener_;
  net::Socket wake_rx_;
  net::Socket wake_tx_;

  // Metrics endpoint (loop thread only past construction).
  std::unique_ptr<net::TcpListener> metrics_listener_;
  std::unordered_map<int, MetricsConn> metrics_conns_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  std::atomic<bool> stopping_{false};
  bool drain_started_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::chrono::steady_clock::time_point last_model_poll_{};

  // Loop-thread state (constructed before the thread starts).
  net::Poller poller_;
  SessionRegistry registry_;

  // Declared last so they are destroyed first: the pool join must happen
  // while the completion queue and store are still alive, and the loop
  // thread join before that.
  std::unique_ptr<parallel::ThreadPool> pool_;
  std::thread thread_;
};

}  // namespace f2pm::serve
