#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace f2pm::serve {

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_scoring_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

PredictionService::PredictionService(ServiceOptions options,
                                     std::shared_ptr<ModelStore> store)
    : options_(std::move(options)), store_(std::move(store)) {
  if (!store_) {
    throw std::invalid_argument("PredictionService: null ModelStore");
  }
  const std::size_t shard_count = resolve_shards(options_.shards);
  // Each shard gets its own pool so scoring dispatch never contends
  // across shards; the service-wide thread budget is split evenly.
  const std::size_t scoring_total =
      resolve_scoring_threads(options_.scoring_threads);
  const std::size_t per_shard_scoring =
      std::max<std::size_t>(1, scoring_total / shard_count);

  const bool reuse_port =
      shard_count > 1 &&
      options_.accept_mode == ServiceOptions::AcceptMode::kReusePort;

  // Client-facing listeners. The first bind settles the port (ephemeral
  // port 0 included) before any shard starts, so port() is always the
  // one true answer; the remaining shards bind that exact port.
  std::vector<std::unique_ptr<net::TcpListener>> listeners(shard_count);
  net::TcpListener::Options listen_options;
  listen_options.reuse_port = reuse_port;
  listeners[0] =
      std::make_unique<net::TcpListener>(options_.port, listen_options);
  port_ = listeners[0]->port();
  if (reuse_port) {
    for (std::size_t i = 1; i < shard_count; ++i) {
      listeners[i] = std::make_unique<net::TcpListener>(port_, listen_options);
    }
  }
  // kHandoff (or single shard): only shard 0 listens; it round-robins
  // accepted fds over the shards when there is more than one.

  std::unique_ptr<net::TcpListener> metrics_listener;
  if (options_.metrics_port >= 0) {
    metrics_listener = std::make_unique<net::TcpListener>(
        static_cast<std::uint16_t>(options_.metrics_port));
  }

  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<ServiceShard>(
        i, options_, *store_, admission_, std::move(listeners[i]),
        i == 0 ? std::move(metrics_listener) : nullptr, per_shard_scoring));
  }
  if (!reuse_port && shard_count > 1) {
    std::vector<ServiceShard*> peers;
    peers.reserve(shard_count);
    for (const auto& shard : shards_) peers.push_back(shard.get());
    shards_.front()->set_handoff_peers(std::move(peers));
  }
  for (const auto& shard : shards_) shard->start();
}

PredictionService::~PredictionService() { stop(); }

ServiceStats PredictionService::stats() const {
  ServiceStats total;
  for (const auto& shard : shards_) {
    const ServiceStats s = shard->snapshot();
    total.sessions_active += s.sessions_active;
    total.sessions_accepted += s.sessions_accepted;
    total.sessions_rejected += s.sessions_rejected;
    total.sessions_evicted += s.sessions_evicted;
    total.datapoints_received += s.datapoints_received;
    total.predictions_sent += s.predictions_sent;
    total.windows_promoted += s.windows_promoted;
    total.protocol_errors += s.protocol_errors;
    total.disconnects_clean += s.disconnects_clean;
    total.disconnects_truncated += s.disconnects_truncated;
    total.disconnects_reset += s.disconnects_reset;
  }
  total.model_version = store_->version();
  return total;
}

std::vector<ServiceStats> PredictionService::shard_stats() const {
  std::vector<ServiceStats> all;
  all.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ServiceStats s = shard->snapshot();
    s.model_version = store_->version();
    all.push_back(s);
  }
  return all;
}

void PredictionService::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Two-phase so every shard drains concurrently: the whole service
  // flushes within one drain_timeout_seconds, not shards × timeout.
  for (const auto& shard : shards_) shard->request_stop();
  for (const auto& shard : shards_) shard->join();
}

}  // namespace f2pm::serve
