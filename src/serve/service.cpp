#include "serve/service.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <utility>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace f2pm::serve {

namespace {

using Clock = std::chrono::steady_clock;

int to_millis_clamped(double seconds) {
  return static_cast<int>(std::max(1.0, seconds * 1000.0));
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Cached handles into the global obs registry; mirrors ServiceStats so a
/// scrape sees the same numbers stats() reports.
struct ServeMetrics {
  obs::Gauge& sessions_active;
  obs::Counter& sessions_accepted;
  obs::Counter& sessions_rejected;
  obs::Counter& sessions_evicted;
  obs::Gauge& inbox_depth;
  obs::Counter& datapoints;
  obs::Counter& predictions;
  obs::Counter& outbound_bytes;
  obs::Counter& disconnects_clean;
  obs::Counter& disconnects_truncated;
  obs::Counter& disconnects_reset;
  obs::Histogram& batch_seconds;

  static ServeMetrics& get() {
    auto& registry = obs::Registry::global();
    static ServeMetrics metrics{
        registry.gauge("f2pm_serve_sessions_active",
                       "Currently connected prediction sessions."),
        registry.counter("f2pm_serve_sessions_accepted_total",
                         "Connections admitted."),
        registry.counter("f2pm_serve_sessions_rejected_total",
                         "Connections turned away at max_sessions."),
        registry.counter("f2pm_serve_sessions_evicted_total",
                         "Sessions dropped for protocol violations, "
                         "backpressure or idle timeout."),
        registry.gauge("f2pm_serve_inbox_depth",
                       "Datapoints queued for scoring across all sessions."),
        registry.counter("f2pm_serve_datapoints_received_total",
                         "Datapoint frames ingested."),
        registry.counter("f2pm_serve_predictions_sent_total",
                         "Prediction frames queued to clients."),
        registry.counter("f2pm_serve_outbound_bytes_total",
                         "Reply bytes written to client sockets."),
        registry.counter("f2pm_serve_disconnects_total",
                         "Session transport endings by kind.",
                         "kind=\"clean\""),
        registry.counter("f2pm_serve_disconnects_total",
                         "Session transport endings by kind.",
                         "kind=\"truncated\""),
        registry.counter("f2pm_serve_disconnects_total",
                         "Session transport endings by kind.",
                         "kind=\"reset\""),
        registry.histogram(
            "f2pm_serve_scoring_batch_seconds",
            "Wall-clock time scoring one session inbox batch.",
            obs::Histogram::default_latency_bounds())};
    return metrics;
  }
};

}  // namespace

PredictionService::PredictionService(ServiceOptions options,
                                     std::shared_ptr<ModelStore> store)
    : options_(std::move(options)),
      store_(std::move(store)),
      listener_(options_.port),
      poller_(options_.backend),
      registry_(options_.max_sessions) {
  if (!store_) {
    throw std::invalid_argument("PredictionService: null ModelStore");
  }
  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("PredictionService: pipe failed");
  }
  wake_rx_ = net::Socket(pipe_fds[0]);
  wake_tx_ = net::Socket(pipe_fds[1]);
  make_nonblocking(wake_rx_.fd());
  make_nonblocking(wake_tx_.fd());

  listener_.set_nonblocking(true);
  poller_.add(listener_.fd(), /*want_read=*/true, /*want_write=*/false);
  poller_.add(wake_rx_.fd(), /*want_read=*/true, /*want_write=*/false);

  if (options_.metrics_port >= 0) {
    metrics_listener_ = std::make_unique<net::TcpListener>(
        static_cast<std::uint16_t>(options_.metrics_port));
    metrics_listener_->set_nonblocking(true);
    poller_.add(metrics_listener_->fd(), /*want_read=*/true,
                /*want_write=*/false);
  }

  pool_ = std::make_unique<parallel::ThreadPool>(options_.scoring_threads);
  last_model_poll_ = Clock::now();
  thread_ = std::thread([this] { run_loop(); });
}

PredictionService::~PredictionService() { stop(); }

void PredictionService::stop() {
  stopping_.store(true);
  wake();
  if (thread_.joinable()) thread_.join();
}

void PredictionService::wake() {
  if (!wake_tx_.valid()) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_tx_.fd(), &byte, 1);
}

void PredictionService::note_disconnect(DisconnectKind kind) {
  ServeMetrics& metrics = ServeMetrics::get();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  switch (kind) {
    case DisconnectKind::kClean:
      ++stats_.disconnects_clean;
      metrics.disconnects_clean.add(1);
      break;
    case DisconnectKind::kTruncated:
      ++stats_.disconnects_truncated;
      metrics.disconnects_truncated.add(1);
      break;
    case DisconnectKind::kReset:
      ++stats_.disconnects_reset;
      metrics.disconnects_reset.add(1);
      break;
  }
}

ServiceStats PredictionService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServiceStats snapshot = stats_;
  snapshot.model_version = store_->version();
  return snapshot;
}

void PredictionService::run_loop() {
  while (true) {
    const Clock::time_point now = Clock::now();

    if (stopping_.load() && !drain_started_) {
      drain_started_ = true;
      drain_deadline_ =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        options_.drain_timeout_seconds));
      poller_.remove(listener_.fd());
      shutdown_metrics_endpoint();
      // Existing sessions flush their queued work, then close.
      std::vector<int> fds;
      fds.reserve(registry_.size());
      for (const auto& [fd, session] : registry_.sessions()) {
        session->draining = true;
        fds.push_back(fd);
      }
      for (int fd : fds) {
        if (auto session = registry_.find(fd)) finish_if_drained(session);
      }
    }

    if (drain_started_) {
      if (registry_.size() == 0) break;
      if (now >= drain_deadline_) {
        std::vector<int> fds;
        fds.reserve(registry_.size());
        for (const auto& [fd, session] : registry_.sessions()) {
          fds.push_back(fd);
        }
        for (int fd : fds) {
          if (auto session = registry_.find(fd)) {
            close_session(session, /*evicted=*/true, "drain deadline");
          }
        }
        break;
      }
    }

    // Wait granularity: fine-grained while draining, the model-watch /
    // idle-scan cadence otherwise, forever when there is nothing timed.
    int timeout_ms = -1;
    if (drain_started_) {
      timeout_ms = 10;
    } else if (store_->has_watch()) {
      timeout_ms = to_millis_clamped(options_.model_poll_seconds);
    }
    if (!drain_started_ && options_.idle_timeout_seconds > 0.0) {
      const int idle_ms =
          to_millis_clamped(options_.idle_timeout_seconds / 4.0);
      timeout_ms = timeout_ms < 0 ? idle_ms : std::min(timeout_ms, idle_ms);
    }

    for (const net::Poller::Event& event : poller_.wait(timeout_ms)) {
      if (event.fd == wake_rx_.fd()) {
        std::array<char, 256> sink;
        while (::read(wake_rx_.fd(), sink.data(), sink.size()) > 0) {
        }
        continue;
      }
      if (event.fd == listener_.fd()) {
        handle_accept();
        continue;
      }
      if (metrics_listener_ && event.fd == metrics_listener_->fd()) {
        handle_metrics_accept();
        continue;
      }
      if (metrics_conns_.count(event.fd) != 0) {
        handle_metrics_event(event.fd, event);
        continue;
      }
      auto session = registry_.find(event.fd);
      if (!session) continue;
      if (event.error) {
        note_disconnect(DisconnectKind::kReset);
        close_session(session, /*evicted=*/true, "socket error/hangup");
        continue;
      }
      if (event.writable) handle_writable(session);
      if (session->closed) continue;
      if (event.readable) handle_readable(session);
    }

    drain_completions();

    if (store_->has_watch() && !drain_started_) {
      const Clock::time_point poll_now = Clock::now();
      if (std::chrono::duration<double>(poll_now - last_model_poll_).count() >=
          options_.model_poll_seconds) {
        last_model_poll_ = poll_now;
        if (store_->poll_watch()) {
          F2PM_LOG(kInfo, "serve")
              << "hot-swapped model to version " << store_->version();
        }
      }
    }

    if (options_.idle_timeout_seconds > 0.0 && !drain_started_) {
      evict_idle_sessions();
    }
  }

  // Loop exited: close anything left (normally nothing). Queued scoring
  // tasks still hold their session shared_ptrs; their late completions
  // are dropped because every session is marked closed.
  std::vector<int> fds;
  for (const auto& [fd, session] : registry_.sessions()) fds.push_back(fd);
  for (int fd : fds) {
    if (auto session = registry_.find(fd)) {
      close_session(session, /*evicted=*/true, "service stopped");
    }
  }
}

void PredictionService::handle_accept() {
  while (auto accepted = listener_.try_accept()) {
    if (!registry_.can_admit()) {
      ServeMetrics::get().sessions_rejected.add(1);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.sessions_rejected;
      continue;  // `accepted` goes out of scope and closes.
    }
    accepted->set_nonblocking(true);
    const int one = 1;
    ::setsockopt(accepted->fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = registry_.add(std::move(*accepted), options_.advisor);
    poller_.add(session->stream.fd(), /*want_read=*/true,
                /*want_write=*/false);
    ServeMetrics& metrics = ServeMetrics::get();
    metrics.sessions_accepted.add(1);
    metrics.sessions_active.set(static_cast<double>(registry_.size()));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.sessions_accepted;
    stats_.sessions_active = registry_.size();
  }
}

bool PredictionService::process_buffered_frames(
    const std::shared_ptr<Session>& session) {
  while (!session->read_paused && !session->closed) {
    auto frame = session->decoder.next();  // may throw ProtocolError
    if (!frame) break;
    if (!handle_frame(session, std::move(*frame))) return false;
  }
  return !session->closed;
}

void PredictionService::handle_readable(
    const std::shared_ptr<Session>& session) {
  std::array<char, 16384> chunk;
  try {
    // Frames left buffered by a backpressure pause parse first.
    if (!process_buffered_frames(session)) return;
    while (!session->closed && !session->read_paused) {
      std::size_t got = 0;
      const net::IoResult io =
          session->stream.recv_some(chunk.data(), chunk.size(), got);
      if (io == net::IoResult::kWouldBlock) break;
      if (io == net::IoResult::kEof) {
        if (session->decoder.mid_frame()) {
          // EOF in the middle of a frame: the peer died or was cut off,
          // not a protocol bug — account it as a truncated disconnect.
          note_disconnect(DisconnectKind::kTruncated);
          close_session(session, /*evicted=*/true,
                        "connection closed mid-frame (truncated)");
          return;
        }
        // Clean EOF (often just a half-close after Bye): stop reading but
        // keep flushing — in-flight scoring results and queued predictions
        // still belong to the client. If it really went away, the flush
        // fails and the write path closes the session.
        session->peer_eof = true;
        session->draining = true;
        poller_.modify(session->stream.fd(), /*want_read=*/false,
                       session->want_write);
        finish_if_drained(session);
        return;
      }
      session->decoder.feed(chunk.data(), got);
      session->last_activity = Clock::now();
      if (!process_buffered_frames(session)) return;
    }
  } catch (const net::ProtocolError& e) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
    close_session(session, /*evicted=*/true,
                  std::string("protocol violation: ") + e.what());
  } catch (const std::exception& e) {
    note_disconnect(DisconnectKind::kReset);
    close_session(session, /*evicted=*/true,
                  std::string("read error: ") + e.what());
  }
}

bool PredictionService::handle_frame(const std::shared_ptr<Session>& session,
                                     net::Frame frame) {
  if (auto* datapoint = std::get_if<data::RawDatapoint>(&frame)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.datapoints_received;
    }
    ServeMetrics& metrics = ServeMetrics::get();
    metrics.datapoints.add(1);
    metrics.inbox_depth.add(1.0);
    ++session->datapoints;
    session->inbox.push_back(InboxItem{false, *datapoint});
    if (session->inbox.size() >= options_.max_pending_datapoints &&
        !session->read_paused) {
      // Backpressure: this client is far ahead of scoring; stop reading
      // until the inbox drains (resumed in drain_completions()).
      session->read_paused = true;
      poller_.modify(session->stream.fd(), /*want_read=*/false,
                     session->want_write);
    }
    dispatch_scoring(session);
    return true;
  }
  if (std::get_if<net::FailEvent>(&frame) != nullptr) {
    ServeMetrics::get().inbox_depth.add(1.0);
    session->inbox.push_back(InboxItem{true, {}});
    dispatch_scoring(session);
    return true;
  }
  if (auto* hello = std::get_if<net::Hello>(&frame)) {
    if (hello->version > net::kProtocolVersion) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      close_session(session, /*evicted=*/true,
                    "unsupported protocol version " +
                        std::to_string(hello->version));
      return false;
    }
    session->client_id = hello->client_id;
    session->hello_received.store(true);
    return true;
  }
  if (std::get_if<net::Bye>(&frame) != nullptr) {
    session->draining = true;
    finish_if_drained(session);
    return !session->closed;
  }
  if (std::get_if<net::StatsRequest>(&frame) != nullptr) {
    // In-band metrics dump: the same text the HTTP scrape endpoint
    // serves, framed as a StatsReply.
    net::StatsReply reply;
    reply.text = obs::render_prometheus(obs::Registry::global());
    if (reply.text.size() > net::kMaxStatsBytes) {
      reply.text.resize(net::kMaxStatsBytes);
    }
    std::vector<std::uint8_t> bytes;
    net::FrameEncoder::encode_stats_reply(bytes, reply);
    queue_reply(session, bytes);
    return !session->closed;
  }
  // Clients must not send server-to-client frames (Prediction,
  // StatsReply); treat it as a violation.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.protocol_errors;
  }
  close_session(session, /*evicted=*/true, "unexpected server-side frame");
  return false;
}

void PredictionService::dispatch_scoring(
    const std::shared_ptr<Session>& session) {
  if (session->in_flight || session->inbox.empty()) return;
  session->in_flight = true;
  std::vector<InboxItem> batch = std::move(session->inbox);
  session->inbox.clear();
  ServeMetrics::get().inbox_depth.sub(static_cast<double>(batch.size()));
  pool_->submit([this, session, batch = std::move(batch)]() mutable {
    score_batch(session, std::move(batch));
  });
}

void PredictionService::score_batch(const std::shared_ptr<Session>& session,
                                    std::vector<InboxItem> batch) {
  Completion completion;
  completion.session = session;
  obs::ScopedTimer batch_timer(ServeMetrics::get().batch_seconds);
  try {
    const std::shared_ptr<const ScoringModel> model = store_->current();
    if (model && session->model_version != model->version) {
      // Hot swap (or first model): rebuild the streaming state against
      // the new immutable snapshot. Window state restarts; a swap can
      // never mix two models within one prediction.
      session->predictor = std::make_unique<core::OnlinePredictor>(
          model->regressor, options_.aggregation, model->selected_columns);
      session->advisor.reset();
      session->model_version = model->version;
    }
    const auto emit = [&](const core::OnlinePrediction& prediction) {
      const bool alarm = session->advisor.update(prediction);
      net::Prediction reply;
      reply.window_end = prediction.window_end;
      reply.rttf = prediction.rttf;
      reply.alarm = alarm;
      reply.model_version = session->model_version;
      net::FrameEncoder::encode_prediction(completion.reply_bytes, reply);
      ++completion.predictions;
    };
    for (const InboxItem& item : batch) {
      if (item.reset) {
        if (session->predictor) session->predictor->reset();
        session->advisor.reset();
        continue;
      }
      // No model yet, or an ingest-only (hello-less legacy) client: the
      // datapoint is consumed without scoring.
      if (!session->predictor) continue;
      if (!session->hello_received.load()) continue;
      if (item.flush) {
        // End of stream: the open window would otherwise be dropped even
        // when it already has enough samples for a prediction.
        if (auto prediction = session->predictor->flush()) emit(*prediction);
        continue;
      }
      std::optional<core::OnlinePrediction> prediction;
      try {
        prediction = session->predictor->observe(item.point);
      } catch (const std::invalid_argument&) {
        // Out-of-order tgen without a fail event (client restarted its
        // stream): treat as an implicit run boundary.
        session->predictor->reset();
        session->advisor.reset();
        prediction = session->predictor->observe(item.point);
      }
      if (prediction) emit(*prediction);
    }
  } catch (const std::exception& e) {
    F2PM_LOG(kWarn, "serve") << "scoring batch failed: " << e.what();
  }
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  wake();
}

void PredictionService::drain_completions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    const std::shared_ptr<Session>& session = completion.session;
    session->in_flight = false;
    if (session->closed) continue;
    if (completion.predictions > 0) {
      session->predictions += completion.predictions;
      ServeMetrics::get().predictions.add(completion.predictions);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.predictions_sent += completion.predictions;
    }
    if (!completion.reply_bytes.empty()) {
      queue_reply(session, completion.reply_bytes);
      if (session->closed) continue;
    }
    if (!session->inbox.empty()) {
      dispatch_scoring(session);
    }
    if (session->read_paused && !session->peer_eof &&
        session->inbox.size() < options_.max_pending_datapoints / 2) {
      session->read_paused = false;
      poller_.modify(session->stream.fd(), /*want_read=*/true,
                     session->want_write);
      // Frames buffered while paused (and any new bytes) parse now.
      handle_readable(session);
      if (session->closed) continue;
    }
    finish_if_drained(session);
  }
}

void PredictionService::queue_reply(const std::shared_ptr<Session>& session,
                                    const std::vector<std::uint8_t>& bytes) {
  session->outbound.insert(session->outbound.end(), bytes.begin(),
                           bytes.end());
  if (session->outbound_pending() > options_.max_outbound_bytes) {
    close_session(session, /*evicted=*/true,
                  "outbound backlog exceeded (client not reading)");
    return;
  }
  handle_writable(session);  // opportunistic flush before arming EPOLLOUT
}

void PredictionService::handle_writable(
    const std::shared_ptr<Session>& session) {
  try {
    while (session->outbound_pending() > 0) {
      std::size_t sent = 0;
      const net::IoResult io = session->stream.send_some(
          session->outbound.data() + session->outbound_pos,
          session->outbound_pending(), sent);
      if (io == net::IoResult::kWouldBlock) break;
      session->outbound_pos += sent;
      ServeMetrics::get().outbound_bytes.add(sent);
    }
  } catch (const std::exception& e) {
    note_disconnect(DisconnectKind::kReset);
    close_session(session, /*evicted=*/true,
                  std::string("write error: ") + e.what());
    return;
  }
  if (session->outbound_pos == session->outbound.size()) {
    session->outbound.clear();
    session->outbound_pos = 0;
  } else if (session->outbound_pos >= 65536) {
    session->outbound.erase(
        session->outbound.begin(),
        session->outbound.begin() +
            static_cast<std::ptrdiff_t>(session->outbound_pos));
    session->outbound_pos = 0;
  }
  update_write_interest(session);
  finish_if_drained(session);
}

void PredictionService::update_write_interest(
    const std::shared_ptr<Session>& session) {
  const bool want_write = session->outbound_pending() > 0;
  if (want_write == session->want_write) return;
  session->want_write = want_write;
  const bool want_read = !session->read_paused && !session->peer_eof;
  poller_.modify(session->stream.fd(), want_read, want_write);
}

void PredictionService::finish_if_drained(
    const std::shared_ptr<Session>& session) {
  if (!session->draining || session->closed) return;
  if (session->in_flight || !session->inbox.empty()) return;
  if (!session->flush_enqueued) {
    session->flush_enqueued = true;
    if (session->hello_received.load()) {
      // Last chance for the open aggregation window: queue the flush
      // marker so the scoring task emits a final best-effort prediction
      // before the connection closes.
      InboxItem item;
      item.flush = true;
      session->inbox.push_back(std::move(item));
      ServeMetrics::get().inbox_depth.add(1.0);
      dispatch_scoring(session);
      return;
    }
  }
  if (session->outbound_pending() > 0) return;
  close_session(session, /*evicted=*/false, "session complete");
}

void PredictionService::close_session(const std::shared_ptr<Session>& session,
                                      bool evicted,
                                      const std::string& reason) {
  if (session->closed) return;
  session->closed = true;
  if (!evicted) note_disconnect(DisconnectKind::kClean);
  if (!session->inbox.empty()) {
    ServeMetrics::get().inbox_depth.sub(
        static_cast<double>(session->inbox.size()));
    session->inbox.clear();
  }
  poller_.remove(session->stream.fd());
  registry_.erase(session->stream.fd());
  session->stream.close();
  if (evicted) {
    F2PM_LOG(kInfo, "serve") << "evicting session '" << session->client_id
                             << "': " << reason;
  }
  ServeMetrics& metrics = ServeMetrics::get();
  metrics.sessions_active.set(static_cast<double>(registry_.size()));
  if (evicted) metrics.sessions_evicted.add(1);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.sessions_active = registry_.size();
  if (evicted) ++stats_.sessions_evicted;
}

void PredictionService::handle_metrics_accept() {
  while (auto accepted = metrics_listener_->try_accept()) {
    accepted->set_nonblocking(true);
    const int fd = accepted->fd();
    metrics_conns_.emplace(fd, MetricsConn(std::move(*accepted)));
    poller_.add(fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void PredictionService::handle_metrics_event(int fd,
                                             const net::Poller::Event& event) {
  auto it = metrics_conns_.find(fd);
  if (it == metrics_conns_.end()) return;
  MetricsConn& conn = it->second;
  try {
    if (event.error) {
      close_metrics_conn(fd);
      return;
    }
    if (event.readable && conn.response.empty()) {
      std::array<char, 4096> chunk;
      bool request_complete = false;
      while (true) {
        std::size_t got = 0;
        const net::IoResult io =
            conn.stream.recv_some(chunk.data(), chunk.size(), got);
        if (io == net::IoResult::kWouldBlock) break;
        if (io == net::IoResult::kEof) {
          request_complete = true;
          break;
        }
        conn.request.append(chunk.data(), got);
        if (conn.request.size() > 16384) {
          close_metrics_conn(fd);
          return;
        }
        if (conn.request.find("\r\n\r\n") != std::string::npos ||
            conn.request.find("\n\n") != std::string::npos) {
          request_complete = true;
          break;
        }
      }
      if (request_complete) {
        conn.response =
            obs::http_response(obs::render_prometheus(obs::Registry::global()));
        poller_.modify(fd, /*want_read=*/false, /*want_write=*/true);
      }
    }
    if (!conn.response.empty()) {
      while (conn.sent < conn.response.size()) {
        std::size_t sent = 0;
        const net::IoResult io = conn.stream.send_some(
            conn.response.data() + conn.sent, conn.response.size() - conn.sent,
            sent);
        if (io == net::IoResult::kWouldBlock) return;
        conn.sent += sent;
      }
      close_metrics_conn(fd);
    }
  } catch (const std::exception&) {
    close_metrics_conn(fd);
  }
}

void PredictionService::close_metrics_conn(int fd) {
  auto it = metrics_conns_.find(fd);
  if (it == metrics_conns_.end()) return;
  poller_.remove(fd);
  it->second.stream.close();
  metrics_conns_.erase(it);
}

void PredictionService::shutdown_metrics_endpoint() {
  if (metrics_listener_) {
    poller_.remove(metrics_listener_->fd());
    metrics_listener_.reset();
  }
  std::vector<int> fds;
  fds.reserve(metrics_conns_.size());
  for (const auto& [fd, conn] : metrics_conns_) fds.push_back(fd);
  for (int fd : fds) close_metrics_conn(fd);
}

void PredictionService::evict_idle_sessions() {
  const Clock::time_point now = Clock::now();
  std::vector<int> idle;
  for (const auto& [fd, session] : registry_.sessions()) {
    const double idle_seconds =
        std::chrono::duration<double>(now - session->last_activity).count();
    if (idle_seconds > options_.idle_timeout_seconds) idle.push_back(fd);
  }
  for (int fd : idle) {
    if (auto session = registry_.find(fd)) {
      close_session(session, /*evicted=*/true, "idle timeout");
    }
  }
}

}  // namespace f2pm::serve
