#include "serve/shard.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <utility>

#include "obs/exposition.hpp"
#include "util/logging.hpp"

namespace f2pm::serve {

namespace {

using Clock = std::chrono::steady_clock;

int to_millis_clamped(double seconds) {
  return static_cast<int>(std::max(1.0, seconds * 1000.0));
}

std::string shard_label(std::size_t index) {
  return "shard=\"" + std::to_string(index) + "\"";
}

}  // namespace

ServiceShard::Metrics::Metrics(std::size_t shard_index)
    : sessions_active(obs::Registry::global().gauge(
          "f2pm_serve_sessions_active",
          "Currently connected prediction sessions.",
          shard_label(shard_index))),
      sessions_accepted(obs::Registry::global().counter(
          "f2pm_serve_sessions_accepted_total", "Connections admitted.",
          shard_label(shard_index))),
      sessions_rejected(obs::Registry::global().counter(
          "f2pm_serve_sessions_rejected_total",
          "Connections turned away at max_sessions.",
          shard_label(shard_index))),
      sessions_evicted(obs::Registry::global().counter(
          "f2pm_serve_sessions_evicted_total",
          "Sessions dropped for protocol violations, backpressure or idle "
          "timeout.",
          shard_label(shard_index))),
      inbox_depth(obs::Registry::global().gauge(
          "f2pm_serve_inbox_depth",
          "Datapoints queued for scoring across the shard's sessions.",
          shard_label(shard_index))),
      datapoints(obs::Registry::global().counter(
          "f2pm_serve_datapoints_received_total",
          "Datapoint frames ingested.", shard_label(shard_index))),
      predictions(obs::Registry::global().counter(
          "f2pm_serve_predictions_sent_total",
          "Prediction frames queued to clients.", shard_label(shard_index))),
      windows_promoted(obs::Registry::global().counter(
          "f2pm_serve_windows_promoted_total",
          "Windows a cascade model promoted to its full stage (promotion "
          "rate = promoted / predictions sent).",
          shard_label(shard_index))),
      outbound_bytes(obs::Registry::global().counter(
          "f2pm_serve_outbound_bytes_total",
          "Reply bytes written to client sockets.",
          shard_label(shard_index))),
      disconnects_clean(obs::Registry::global().counter(
          "f2pm_serve_disconnects_total",
          "Session transport endings by kind.",
          "kind=\"clean\"," + shard_label(shard_index))),
      disconnects_truncated(obs::Registry::global().counter(
          "f2pm_serve_disconnects_total",
          "Session transport endings by kind.",
          "kind=\"truncated\"," + shard_label(shard_index))),
      disconnects_reset(obs::Registry::global().counter(
          "f2pm_serve_disconnects_total",
          "Session transport endings by kind.",
          "kind=\"reset\"," + shard_label(shard_index))),
      runs_exported(obs::Registry::global().counter(
          "f2pm_serve_runs_exported_total",
          "Completed crash-labeled runs handed to the run sink.",
          shard_label(shard_index))),
      runs_export_dropped(obs::Registry::global().counter(
          "f2pm_serve_runs_export_dropped_total",
          "Completed runs not exported (oversize, empty, inconsistent fail "
          "time, or a throwing sink).",
          shard_label(shard_index))),
      batch_seconds(obs::Registry::global().histogram(
          "f2pm_serve_scoring_batch_seconds",
          "Wall-clock time scoring one session inbox batch.",
          obs::Histogram::default_latency_bounds(),
          shard_label(shard_index))) {}

ServiceShard::ServiceShard(std::size_t index, const ServiceOptions& options,
                           ModelStore& store,
                           std::atomic<std::size_t>& admission,
                           std::unique_ptr<net::TcpListener> listener,
                           std::unique_ptr<net::TcpListener> metrics_listener,
                           std::size_t scoring_threads)
    : index_(index),
      options_(options),
      store_(store),
      admission_(admission),
      scoring_threads_(scoring_threads),
      listener_(std::move(listener)),
      metrics_listener_(std::move(metrics_listener)),
      metrics_(index),
      poller_(options.backend),
      registry_(options.max_sessions, &arena_) {
  poller_.add(wake_.fd(), /*want_read=*/true, /*want_write=*/false);
  if (listener_) {
    listener_->set_nonblocking(true);
    poller_.add(listener_->fd(), /*want_read=*/true, /*want_write=*/false);
  }
  if (metrics_listener_) {
    metrics_listener_->set_nonblocking(true);
    poller_.add(metrics_listener_->fd(), /*want_read=*/true,
                /*want_write=*/false);
  }
}

ServiceShard::~ServiceShard() {
  request_stop();
  join();
}

void ServiceShard::set_handoff_peers(std::vector<ServiceShard*> peers) {
  peers_ = std::move(peers);
}

void ServiceShard::start() {
  pool_ = std::make_unique<parallel::ThreadPool>(scoring_threads_);
  last_model_poll_ = Clock::now();
  thread_ = std::thread([this] { run_loop(); });
}

void ServiceShard::request_stop() {
  stopping_.store(true);
  wake_.notify();
}

void ServiceShard::join() {
  if (thread_.joinable()) thread_.join();
  pool_.reset();
}

void ServiceShard::adopt_admitted(net::TcpStream stream) {
  {
    std::lock_guard<std::mutex> lock(adopted_mutex_);
    adopted_.push_back(std::move(stream));
  }
  adopted_pending_.store(true, std::memory_order_release);
  wake_.notify();
}

ServiceStats ServiceShard::snapshot() const {
  ServiceStats stats;
  stats.sessions_active =
      counters_.sessions_active.load(std::memory_order_relaxed);
  stats.sessions_accepted =
      counters_.sessions_accepted.load(std::memory_order_relaxed);
  stats.sessions_rejected =
      counters_.sessions_rejected.load(std::memory_order_relaxed);
  stats.sessions_evicted =
      counters_.sessions_evicted.load(std::memory_order_relaxed);
  stats.datapoints_received =
      counters_.datapoints_received.load(std::memory_order_relaxed);
  stats.predictions_sent =
      counters_.predictions_sent.load(std::memory_order_relaxed);
  stats.windows_promoted =
      counters_.windows_promoted.load(std::memory_order_relaxed);
  stats.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  stats.disconnects_clean =
      counters_.disconnects_clean.load(std::memory_order_relaxed);
  stats.disconnects_truncated =
      counters_.disconnects_truncated.load(std::memory_order_relaxed);
  stats.disconnects_reset =
      counters_.disconnects_reset.load(std::memory_order_relaxed);
  return stats;
}

void ServiceShard::note_disconnect(DisconnectKind kind) {
  switch (kind) {
    case DisconnectKind::kClean:
      counters_.disconnects_clean.fetch_add(1, std::memory_order_relaxed);
      metrics_.disconnects_clean.add(1);
      break;
    case DisconnectKind::kTruncated:
      counters_.disconnects_truncated.fetch_add(1, std::memory_order_relaxed);
      metrics_.disconnects_truncated.add(1);
      break;
    case DisconnectKind::kReset:
      counters_.disconnects_reset.fetch_add(1, std::memory_order_relaxed);
      metrics_.disconnects_reset.add(1);
      break;
  }
}

bool ServiceShard::try_admit() {
  std::size_t active = admission_.load(std::memory_order_relaxed);
  while (active < options_.max_sessions) {
    if (admission_.compare_exchange_weak(active, active + 1,
                                         std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void ServiceShard::release_admission() {
  admission_.fetch_sub(1, std::memory_order_acq_rel);
}

void ServiceShard::run_loop() {
  while (true) {
    const Clock::time_point now = Clock::now();

    if (stopping_.load() && !drain_started_) {
      drain_started_ = true;
      drain_deadline_ =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        options_.drain_timeout_seconds));
      if (listener_) poller_.remove(listener_->fd());
      shutdown_metrics_endpoint();
      // Connections handed off but not yet registered close unserved;
      // their admission slots must still be released.
      drain_adopted();
      // Existing sessions flush their queued work, then close.
      std::vector<int> fds;
      fds.reserve(registry_.size());
      for (const auto& [fd, session] : registry_.sessions()) {
        session->draining = true;
        fds.push_back(fd);
      }
      for (int fd : fds) {
        if (auto session = registry_.find(fd)) finish_if_drained(session);
      }
    }

    if (drain_started_) {
      if (registry_.size() == 0) break;
      if (now >= drain_deadline_) {
        std::vector<int> fds;
        fds.reserve(registry_.size());
        for (const auto& [fd, session] : registry_.sessions()) {
          fds.push_back(fd);
        }
        for (int fd : fds) {
          if (auto session = registry_.find(fd)) {
            close_session(session, /*evicted=*/true, "drain deadline");
          }
        }
        break;
      }
    }

    // Wait granularity: fine-grained while draining, the model-watch /
    // idle-scan cadence otherwise, forever when there is nothing timed —
    // control messages arrive through the wakeup fd, never the timeout.
    int timeout_ms = -1;
    if (drain_started_) {
      timeout_ms = 10;
    } else if (index_ == 0 && store_.has_watch()) {
      timeout_ms = to_millis_clamped(options_.model_poll_seconds);
    }
    if (!drain_started_ && options_.idle_timeout_seconds > 0.0) {
      const int idle_ms =
          to_millis_clamped(options_.idle_timeout_seconds / 4.0);
      timeout_ms = timeout_ms < 0 ? idle_ms : std::min(timeout_ms, idle_ms);
    }

    for (const net::Poller::Event& event : poller_.wait(timeout_ms)) {
      if (event.fd == wake_.fd()) {
        wake_.drain();
        continue;
      }
      if (listener_ && event.fd == listener_->fd()) {
        handle_accept();
        continue;
      }
      if (metrics_listener_ && event.fd == metrics_listener_->fd()) {
        handle_metrics_accept();
        continue;
      }
      if (metrics_conns_.count(event.fd) != 0) {
        handle_metrics_event(event.fd, event);
        continue;
      }
      auto session = registry_.find(event.fd);
      if (!session) continue;
      if (event.error) {
        note_disconnect(DisconnectKind::kReset);
        close_session(session, /*evicted=*/true, "socket error/hangup");
        continue;
      }
      if (event.writable) handle_writable(session);
      if (session->closed) continue;
      if (event.readable) handle_readable(session);
    }

    if (!drain_started_ &&
        adopted_pending_.load(std::memory_order_acquire)) {
      drain_adopted();
    }

    drain_completions();

    if (index_ == 0 && store_.has_watch() && !drain_started_) {
      const Clock::time_point poll_now = Clock::now();
      if (std::chrono::duration<double>(poll_now - last_model_poll_).count() >=
          options_.model_poll_seconds) {
        last_model_poll_ = poll_now;
        if (store_.poll_watch()) {
          F2PM_LOG(kInfo, "serve")
              << "hot-swapped model to version " << store_.version();
        }
      }
    }

    if (options_.idle_timeout_seconds > 0.0 && !drain_started_) {
      evict_idle_sessions();
    }
  }

  // Loop exited: close anything left (normally nothing). Queued scoring
  // tasks still hold their session shared_ptrs; their late completions
  // are dropped because every session is marked closed.
  std::vector<int> fds;
  for (const auto& [fd, session] : registry_.sessions()) fds.push_back(fd);
  for (int fd : fds) {
    if (auto session = registry_.find(fd)) {
      close_session(session, /*evicted=*/true, "service stopped");
    }
  }
}

void ServiceShard::handle_accept() {
  while (auto accepted = listener_->try_accept()) {
    if (!try_admit()) {
      metrics_.sessions_rejected.add(1);
      counters_.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      continue;  // `accepted` goes out of scope and closes.
    }
    if (!peers_.empty()) {
      // kHandoff acceptor: deterministic round-robin placement. The
      // admission slot just reserved travels with the stream.
      ServiceShard* target = peers_[next_peer_];
      next_peer_ = (next_peer_ + 1) % peers_.size();
      if (target != this) {
        target->adopt_admitted(std::move(*accepted));
        continue;
      }
    }
    register_session(std::move(*accepted));
  }
}

void ServiceShard::drain_adopted() {
  adopted_pending_.store(false, std::memory_order_release);
  std::vector<net::TcpStream> adopted;
  {
    std::lock_guard<std::mutex> lock(adopted_mutex_);
    adopted.swap(adopted_);
  }
  for (net::TcpStream& stream : adopted) {
    if (drain_started_) {
      // Stopping: the connection was admitted but never served.
      release_admission();
      continue;
    }
    register_session(std::move(stream));
  }
}

void ServiceShard::register_session(net::TcpStream stream) {
  stream.set_nonblocking(true);
  const int one = 1;
  ::setsockopt(stream.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto session = registry_.add(std::move(stream), options_.advisor);
  poller_.add(session->stream.fd(), /*want_read=*/true,
              /*want_write=*/false);
  metrics_.sessions_accepted.add(1);
  metrics_.sessions_active.set(static_cast<double>(registry_.size()));
  counters_.sessions_accepted.fetch_add(1, std::memory_order_relaxed);
  counters_.sessions_active.store(registry_.size(),
                                  std::memory_order_relaxed);
}

bool ServiceShard::process_buffered_frames(
    const std::shared_ptr<Session>& session) {
  while (!session->read_paused && !session->closed) {
    // Zero-copy decode: the view aliases the decoder's inbox buffer and
    // dies at the next decoder call, so handle_frame detaches (copies)
    // exactly the bytes it keeps — a datapoint into the session inbox,
    // the Hello id into the session. Frames left buffered by a
    // backpressure pause stay valid in place: the decoder only compacts
    // inside feed(), which cannot run while reads are paused.
    auto view = session->decoder.next_view();  // may throw ProtocolError
    if (!view) break;
    if (!handle_frame(session, *view)) return false;
  }
  return !session->closed;
}

void ServiceShard::handle_readable(const std::shared_ptr<Session>& session) {
  std::array<char, 16384> chunk;
  try {
    // Frames left buffered by a backpressure pause parse first.
    if (!process_buffered_frames(session)) return;
    while (!session->closed && !session->read_paused) {
      std::size_t got = 0;
      const net::IoResult io =
          session->stream.recv_some(chunk.data(), chunk.size(), got);
      if (io == net::IoResult::kWouldBlock) break;
      if (io == net::IoResult::kEof) {
        if (session->decoder.mid_frame()) {
          // EOF in the middle of a frame: the peer died or was cut off,
          // not a protocol bug — account it as a truncated disconnect.
          note_disconnect(DisconnectKind::kTruncated);
          close_session(session, /*evicted=*/true,
                        "connection closed mid-frame (truncated)");
          return;
        }
        // Clean EOF (often just a half-close after Bye): stop reading but
        // keep flushing — in-flight scoring results and queued predictions
        // still belong to the client. If it really went away, the flush
        // fails and the write path closes the session.
        session->peer_eof = true;
        session->draining = true;
        poller_.modify(session->stream.fd(), /*want_read=*/false,
                       session->want_write);
        finish_if_drained(session);
        return;
      }
      session->decoder.feed(chunk.data(), got);
      session->last_activity = Clock::now();
      if (!process_buffered_frames(session)) return;
    }
  } catch (const net::ProtocolError& e) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    close_session(session, /*evicted=*/true,
                  std::string("protocol violation: ") + e.what());
  } catch (const std::exception& e) {
    note_disconnect(DisconnectKind::kReset);
    close_session(session, /*evicted=*/true,
                  std::string("read error: ") + e.what());
  }
}

bool ServiceShard::handle_frame(const std::shared_ptr<Session>& session,
                                const net::FrameView& frame) {
  switch (frame.type()) {
    case net::FrameType::kDatapoint: {
      counters_.datapoints_received.fetch_add(1, std::memory_order_relaxed);
      metrics_.datapoints.add(1);
      metrics_.inbox_depth.add(1.0);
      ++session->datapoints;
      // Detach: the one copy out of the inbox buffer, straight into the
      // (arena-backed, pre-sized) session inbox.
      InboxItem item;
      frame.datapoint(item.point);
      if (options_.run_sink) {
        if (!session->run_samples.empty() &&
            item.point.tgen < session->run_samples.back().tgen) {
          // Out-of-order tgen without a fail event: the scoring path
          // treats it as an implicit run boundary, so the export buffer
          // restarts too — the truncated run has no crash label and is
          // not exported.
          session->run_samples.clear();
          session->run_export_overflow = false;
        }
        if (!session->run_export_overflow) {
          if (session->run_samples.size() < options_.run_export_max_samples) {
            session->run_samples.push_back(item.point);
          } else {
            // Oversize run: drop the whole run rather than export a
            // truncated (mislabeled-RTTF) prefix or grow without bound.
            session->run_export_overflow = true;
            session->run_samples.clear();
            session->run_samples.shrink_to_fit();
          }
        }
      }
      session->inbox.push_back(item);
      if (session->inbox.size() >= options_.max_pending_datapoints &&
          !session->read_paused) {
        // Backpressure: this client is far ahead of scoring; stop reading
        // until the inbox drains (resumed in drain_completions()).
        session->read_paused = true;
        poller_.modify(session->stream.fd(), /*want_read=*/false,
                       session->want_write);
      }
      dispatch_scoring(session);
      return true;
    }
    case net::FrameType::kFailEvent: {
      if (options_.run_sink) export_run(session, frame.fail_time());
      metrics_.inbox_depth.add(1.0);
      session->inbox.push_back(InboxItem{true, {}});
      dispatch_scoring(session);
      return true;
    }
    case net::FrameType::kHello: {
      const std::uint32_t version = frame.hello_version();
      if (version > net::kProtocolVersion) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_session(session, /*evicted=*/true,
                      "unsupported protocol version " +
                          std::to_string(version));
        return false;
      }
      session->client_id = frame.hello_client_id();
      // Warm the hot buffers now, before real traffic: steady-state
      // datapoints then append into already-sized arena-backed storage.
      session->reserve_hot_buffers(options_.window_reserve_samples);
      session->hello_received.store(true);
      return true;
    }
    case net::FrameType::kBye: {
      session->draining = true;
      finish_if_drained(session);
      return !session->closed;
    }
    case net::FrameType::kStatsRequest: {
      // In-band metrics dump: the same text the HTTP scrape endpoint
      // serves, framed as a StatsReply.
      net::StatsReply reply;
      reply.text = obs::render_prometheus(obs::Registry::global());
      if (reply.text.size() > net::kMaxStatsBytes) {
        reply.text.resize(net::kMaxStatsBytes);
      }
      std::vector<std::uint8_t> bytes;
      net::FrameEncoder::encode_stats_reply(bytes, reply);
      queue_reply(session, bytes);
      return !session->closed;
    }
    case net::FrameType::kPrediction:
    case net::FrameType::kStatsReply:
      break;
  }
  // Clients must not send server-to-client frames (Prediction,
  // StatsReply); treat it as a violation.
  counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  close_session(session, /*evicted=*/true, "unexpected server-side frame");
  return false;
}

void ServiceShard::export_run(const std::shared_ptr<Session>& session,
                              double fail_time) {
  // The buffer always resets here: whatever happens to this run, the next
  // one starts clean after the fail event.
  std::vector<data::RawDatapoint> samples = std::move(session->run_samples);
  session->run_samples = {};
  const bool overflowed = session->run_export_overflow;
  session->run_export_overflow = false;

  if (overflowed || samples.empty() ||
      fail_time < samples.back().tgen) {
    // Oversize run, fail event with no preceding datapoints, or a fail
    // time that precedes the last sample (which would mislabel RTTF).
    metrics_.runs_export_dropped.add(1);
    return;
  }
  CompletedRun completed;
  completed.run.samples = std::move(samples);
  completed.run.fail_time = fail_time;
  completed.run.failed = true;
  completed.client_id = session->client_id;
  completed.shard = index_;
  try {
    options_.run_sink(std::move(completed));
    metrics_.runs_exported.add(1);
  } catch (const std::exception& e) {
    metrics_.runs_export_dropped.add(1);
    F2PM_LOG(kWarn, "serve") << "run sink failed: " << e.what();
  }
}

void ServiceShard::dispatch_scoring(const std::shared_ptr<Session>& session) {
  if (session->in_flight || session->inbox.empty()) return;
  session->in_flight = true;
  // Double-buffer handoff: swap the filled inbox with the empty scoring
  // batch so both keep their warmed arena capacity. Moving the inbox into
  // the task (the old idiom) surrendered its capacity every batch and
  // reallocated on the next datapoint.
  session->scoring_batch.swap(session->inbox);
  metrics_.inbox_depth.sub(static_cast<double>(session->scoring_batch.size()));
  // The submit itself allocates (task-queue node + closure state): one
  // allocation per batch, amortized across the batch's datapoints — the
  // per-datapoint path above is allocation-free.
  pool_->submit([this, session] { score_batch(session); });
}

void ServiceShard::score_batch(const std::shared_ptr<Session>& session) {
  Completion completion;
  completion.session = session;
  session->reply_bytes.clear();  // Capacity retained across batches.
  obs::ScopedTimer batch_timer(metrics_.batch_seconds);
  try {
    // Steady-state model check: one atomic load. Only an actual version
    // move (hot swap, or the first model) pays for the RCU snapshot load
    // and the predictor rebuild.
    if (store_.version() != session->model_version) {
      const std::shared_ptr<const ScoringModel> model = store_.current();
      if (model && session->model_version != model->version) {
        // Hot swap (or first model): rebuild the streaming state against
        // the new immutable snapshot. Window state restarts; a swap can
        // never mix two models within one prediction.
        session->predictor = std::make_unique<core::OnlinePredictor>(
            model->regressor, options_.aggregation, model->selected_columns,
            &arena_);
        session->predictor->reserve_window(options_.window_reserve_samples);
        session->advisor.reset();
        session->model_version = model->version;
      }
    }
    const auto emit = [&](const core::OnlinePrediction& prediction) {
      const bool alarm = session->advisor.update(prediction);
      net::Prediction reply;
      reply.window_end = prediction.window_end;
      reply.rttf = prediction.rttf;
      reply.alarm = alarm;
      reply.model_version = session->model_version;
      net::FrameEncoder::encode_prediction(session->reply_bytes, reply);
      ++completion.predictions;
      if (prediction.promoted) ++completion.promoted;
    };
    for (const InboxItem& item : session->scoring_batch) {
      if (item.reset) {
        if (session->predictor) session->predictor->reset();
        session->advisor.reset();
        continue;
      }
      // No model yet, or an ingest-only (hello-less legacy) client: the
      // datapoint is consumed without scoring.
      if (!session->predictor) continue;
      if (!session->hello_received.load()) continue;
      if (item.flush) {
        // End of stream: the open window would otherwise be dropped even
        // when it already has enough samples for a prediction.
        if (auto prediction = session->predictor->flush()) emit(*prediction);
        continue;
      }
      std::optional<core::OnlinePrediction> prediction;
      try {
        prediction = session->predictor->observe(item.point);
      } catch (const std::invalid_argument&) {
        // Out-of-order tgen without a fail event (client restarted its
        // stream): treat as an implicit run boundary.
        session->predictor->reset();
        session->advisor.reset();
        prediction = session->predictor->observe(item.point);
      }
      if (prediction) emit(*prediction);
    }
  } catch (const std::exception& e) {
    F2PM_LOG(kWarn, "serve") << "scoring batch failed: " << e.what();
  }
  session->scoring_batch.clear();  // Capacity retained for the next swap.
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  wake_.notify();
}

void ServiceShard::drain_completions() {
  {
    // Swap, don't move out: both queue vectors keep their capacity, so
    // the completion path stops allocating once warmed.
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_scratch_.swap(completions_);
  }
  for (Completion& completion : completions_scratch_) {
    const std::shared_ptr<Session>& session = completion.session;
    session->in_flight = false;
    if (session->closed) continue;
    if (completion.predictions > 0) {
      session->predictions += completion.predictions;
      metrics_.predictions.add(completion.predictions);
      counters_.predictions_sent.fetch_add(completion.predictions,
                                           std::memory_order_relaxed);
      if (completion.promoted > 0) {
        metrics_.windows_promoted.add(completion.promoted);
        counters_.windows_promoted.fetch_add(completion.promoted,
                                             std::memory_order_relaxed);
      }
    }
    if (!session->reply_bytes.empty()) {
      // The reply scratch is still this completion's: a new batch cannot
      // start (and overwrite it) until dispatch_scoring below runs.
      queue_reply(session, session->reply_bytes);
      if (session->closed) continue;
    }
    if (!session->inbox.empty()) {
      dispatch_scoring(session);
    }
    if (session->read_paused && !session->peer_eof &&
        session->inbox.size() < options_.max_pending_datapoints / 2) {
      session->read_paused = false;
      poller_.modify(session->stream.fd(), /*want_read=*/true,
                     session->want_write);
      // Frames buffered while paused (and any new bytes) parse now.
      handle_readable(session);
      if (session->closed) continue;
    }
    finish_if_drained(session);
  }
  // Drop the session refs now rather than at the next drain — holding
  // them would keep closed sessions (and their arena buffers) alive.
  completions_scratch_.clear();
}

void ServiceShard::queue_reply(const std::shared_ptr<Session>& session,
                               std::span<const std::uint8_t> bytes) {
  session->outbound.insert(session->outbound.end(), bytes.begin(),
                           bytes.end());
  if (session->outbound_pending() > options_.max_outbound_bytes) {
    close_session(session, /*evicted=*/true,
                  "outbound backlog exceeded (client not reading)");
    return;
  }
  handle_writable(session);  // opportunistic flush before arming EPOLLOUT
}

void ServiceShard::handle_writable(const std::shared_ptr<Session>& session) {
  try {
    while (session->outbound_pending() > 0) {
      std::size_t sent = 0;
      const net::IoResult io = session->stream.send_some(
          session->outbound.data() + session->outbound_pos,
          session->outbound_pending(), sent);
      if (io == net::IoResult::kWouldBlock) break;
      session->outbound_pos += sent;
      metrics_.outbound_bytes.add(sent);
    }
  } catch (const std::exception& e) {
    note_disconnect(DisconnectKind::kReset);
    close_session(session, /*evicted=*/true,
                  std::string("write error: ") + e.what());
    return;
  }
  if (session->outbound_pos == session->outbound.size()) {
    session->outbound.clear();
    session->outbound_pos = 0;
  } else if (session->outbound_pos >= 65536) {
    session->outbound.erase(
        session->outbound.begin(),
        session->outbound.begin() +
            static_cast<std::ptrdiff_t>(session->outbound_pos));
    session->outbound_pos = 0;
  }
  update_write_interest(session);
  finish_if_drained(session);
}

void ServiceShard::update_write_interest(
    const std::shared_ptr<Session>& session) {
  const bool want_write = session->outbound_pending() > 0;
  if (want_write == session->want_write) return;
  session->want_write = want_write;
  const bool want_read = !session->read_paused && !session->peer_eof;
  poller_.modify(session->stream.fd(), want_read, want_write);
}

void ServiceShard::finish_if_drained(const std::shared_ptr<Session>& session) {
  if (!session->draining || session->closed) return;
  if (session->in_flight || !session->inbox.empty()) return;
  if (!session->flush_enqueued) {
    session->flush_enqueued = true;
    if (session->hello_received.load()) {
      // Last chance for the open aggregation window: queue the flush
      // marker so the scoring task emits a final best-effort prediction
      // before the connection closes.
      InboxItem item;
      item.flush = true;
      session->inbox.push_back(std::move(item));
      metrics_.inbox_depth.add(1.0);
      dispatch_scoring(session);
      return;
    }
  }
  if (session->outbound_pending() > 0) return;
  close_session(session, /*evicted=*/false, "session complete");
}

void ServiceShard::close_session(const std::shared_ptr<Session>& session,
                                 bool evicted, const std::string& reason) {
  if (session->closed) return;
  session->closed = true;
  if (!evicted) note_disconnect(DisconnectKind::kClean);
  if (!session->inbox.empty()) {
    metrics_.inbox_depth.sub(static_cast<double>(session->inbox.size()));
    session->inbox.clear();
  }
  poller_.remove(session->stream.fd());
  registry_.erase(session->stream.fd());
  session->stream.close();
  release_admission();
  if (evicted) {
    F2PM_LOG(kInfo, "serve") << "shard " << index_ << " evicting session '"
                             << session->client_id << "': " << reason;
  }
  metrics_.sessions_active.set(static_cast<double>(registry_.size()));
  if (evicted) {
    metrics_.sessions_evicted.add(1);
    counters_.sessions_evicted.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.sessions_active.store(registry_.size(),
                                  std::memory_order_relaxed);
}

void ServiceShard::handle_metrics_accept() {
  while (auto accepted = metrics_listener_->try_accept()) {
    accepted->set_nonblocking(true);
    const int fd = accepted->fd();
    metrics_conns_.emplace(fd, MetricsConn(std::move(*accepted)));
    poller_.add(fd, /*want_read=*/true, /*want_write=*/false);
  }
}

void ServiceShard::handle_metrics_event(int fd,
                                        const net::Poller::Event& event) {
  auto it = metrics_conns_.find(fd);
  if (it == metrics_conns_.end()) return;
  MetricsConn& conn = it->second;
  try {
    if (event.error) {
      close_metrics_conn(fd);
      return;
    }
    if (event.readable && conn.response.empty()) {
      std::array<char, 4096> chunk;
      bool request_complete = false;
      while (true) {
        std::size_t got = 0;
        const net::IoResult io =
            conn.stream.recv_some(chunk.data(), chunk.size(), got);
        if (io == net::IoResult::kWouldBlock) break;
        if (io == net::IoResult::kEof) {
          request_complete = true;
          break;
        }
        conn.request.append(chunk.data(), got);
        if (conn.request.size() > 16384) {
          close_metrics_conn(fd);
          return;
        }
        if (conn.request.find("\r\n\r\n") != std::string::npos ||
            conn.request.find("\n\n") != std::string::npos) {
          request_complete = true;
          break;
        }
      }
      if (request_complete) {
        conn.response =
            obs::http_response(obs::render_prometheus(obs::Registry::global()));
        poller_.modify(fd, /*want_read=*/false, /*want_write=*/true);
      }
    }
    if (!conn.response.empty()) {
      while (conn.sent < conn.response.size()) {
        std::size_t sent = 0;
        const net::IoResult io = conn.stream.send_some(
            conn.response.data() + conn.sent, conn.response.size() - conn.sent,
            sent);
        if (io == net::IoResult::kWouldBlock) return;
        conn.sent += sent;
      }
      close_metrics_conn(fd);
    }
  } catch (const std::exception&) {
    close_metrics_conn(fd);
  }
}

void ServiceShard::close_metrics_conn(int fd) {
  auto it = metrics_conns_.find(fd);
  if (it == metrics_conns_.end()) return;
  poller_.remove(fd);
  it->second.stream.close();
  metrics_conns_.erase(it);
}

void ServiceShard::shutdown_metrics_endpoint() {
  if (metrics_listener_) {
    poller_.remove(metrics_listener_->fd());
    metrics_listener_.reset();
  }
  std::vector<int> fds;
  fds.reserve(metrics_conns_.size());
  for (const auto& [fd, conn] : metrics_conns_) fds.push_back(fd);
  for (int fd : fds) close_metrics_conn(fd);
}

void ServiceShard::evict_idle_sessions() {
  const Clock::time_point now = Clock::now();
  std::vector<int> idle;
  for (const auto& [fd, session] : registry_.sessions()) {
    const double idle_seconds =
        std::chrono::duration<double>(now - session->last_activity).count();
    if (idle_seconds > options_.idle_timeout_seconds) idle.push_back(fd);
  }
  for (int fd : idle) {
    if (auto session = registry_.find(fd)) {
      close_session(session, /*evicted=*/true, "idle timeout");
    }
  }
}

}  // namespace f2pm::serve
