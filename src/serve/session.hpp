// Per-connection state of the prediction service.
//
// Ownership/threading contract (enforced by PredictionService):
//   * The event-loop thread owns the socket, frame decoder, outbound
//     queue, inbox and all bookkeeping flags.
//   * While `in_flight` is true, exactly one scoring task on the thread
//     pool owns `predictor`, `advisor` and `model_version`; the loop does
//     not touch them. The in_flight handoff is sequenced through the
//     service's mutex-protected completion queue, so no field needs its
//     own lock except the two atomics shared across that boundary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"
#include "data/datapoint.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::serve {

/// One queued unit of per-session scoring work, in arrival order.
struct InboxItem {
  /// True for a run boundary (fail event): reset the streaming predictor
  /// and the advisor debounce instead of scoring a datapoint.
  bool reset = false;
  data::RawDatapoint point;
  /// True for the end-of-stream marker the drain path enqueues: flush the
  /// predictor's open window (best-effort final prediction) instead of
  /// scoring a datapoint.
  bool flush = false;
};

/// State of one connected client.
struct Session {
  Session(net::TcpStream stream_in, core::AdvisorOptions advisor_options)
      : stream(std::move(stream_in)),
        advisor(advisor_options),
        last_activity(std::chrono::steady_clock::now()) {}

  net::TcpStream stream;
  net::FrameDecoder decoder;
  std::string client_id;  ///< From Hello; "" for legacy ingest clients.

  /// Set by the loop thread on Hello, read by scoring tasks (gates
  /// whether Prediction replies are produced) — hence atomic.
  std::atomic<bool> hello_received{false};

  // --- outbound queue (loop thread only) ---------------------------------
  std::vector<std::uint8_t> outbound;
  std::size_t outbound_pos = 0;  ///< Sent prefix of `outbound`.
  bool want_write = false;       ///< Mirror of the poller write interest.
  bool read_paused = false;      ///< Backpressure: inbox over the limit.
  bool peer_eof = false;  ///< Client half-closed; never re-arm reads.
  bool draining = false;  ///< Bye received or service stopping: flush+close.
  bool closed = false;    ///< Unregistered; late completions are dropped.
  /// The drain path queued the final flush marker (at most once).
  bool flush_enqueued = false;

  // --- run export (loop thread only) -------------------------------------
  /// Raw samples of the current run, retained only when the service has a
  /// run_sink; moved out (and the buffer reset) when a FailEvent completes
  /// the run.
  std::vector<data::RawDatapoint> run_samples;
  /// The current run overflowed run_export_max_samples: stop retaining and
  /// skip exporting it (the next run starts clean).
  bool run_export_overflow = false;

  // --- scoring pipeline --------------------------------------------------
  std::vector<InboxItem> inbox;  ///< Loop thread only.
  bool in_flight = false;        ///< A scoring task currently owns state.
  std::unique_ptr<core::OnlinePredictor> predictor;  ///< Task-owned.
  core::RejuvenationAdvisor advisor;                 ///< Task-owned.
  std::uint32_t model_version = 0;                   ///< Task-owned.

  std::chrono::steady_clock::time_point last_activity;
  std::uint64_t datapoints = 0;
  std::uint64_t predictions = 0;

  [[nodiscard]] std::size_t outbound_pending() const {
    return outbound.size() - outbound_pos;
  }
};

/// fd-keyed session table with admission control. Loop thread only.
class SessionRegistry {
 public:
  explicit SessionRegistry(std::size_t max_sessions)
      : max_sessions_(max_sessions) {}

  [[nodiscard]] bool can_admit() const {
    return sessions_.size() < max_sessions_;
  }

  std::shared_ptr<Session> add(net::TcpStream stream,
                               core::AdvisorOptions advisor_options) {
    auto session =
        std::make_shared<Session>(std::move(stream), advisor_options);
    sessions_.emplace(session->stream.fd(), session);
    return session;
  }

  [[nodiscard]] std::shared_ptr<Session> find(int fd) const {
    auto it = sessions_.find(fd);
    return it == sessions_.end() ? nullptr : it->second;
  }

  void erase(int fd) { sessions_.erase(fd); }

  [[nodiscard]] std::size_t size() const { return sessions_.size(); }

  [[nodiscard]] const std::unordered_map<int, std::shared_ptr<Session>>&
  sessions() const {
    return sessions_;
  }

 private:
  std::size_t max_sessions_;
  std::unordered_map<int, std::shared_ptr<Session>> sessions_;
};

}  // namespace f2pm::serve
