// Per-connection state of the prediction service.
//
// Ownership/threading contract (enforced by PredictionService):
//   * The event-loop thread owns the socket, frame decoder, outbound
//     queue, inbox and all bookkeeping flags.
//   * While `in_flight` is true, exactly one scoring task on the thread
//     pool owns `predictor`, `advisor`, `model_version`, `scoring_batch`
//     and `reply_bytes`; the loop does not touch them. The in_flight
//     handoff is sequenced through the service's mutex-protected
//     completion queue, so no field needs its own lock except the two
//     atomics shared across that boundary.
//
// Allocation contract: every hot buffer (inbox, scoring batch, reply
// scratch, outbound queue — and the predictor's window, wired up by the
// shard) is backed by the shard's SessionArena and keeps its capacity
// across windows and batches, so the steady-state per-datapoint path
// never allocates. Buffers are pre-sized at Hello (reserve_hot_buffers)
// and grow on demand past that, paying for any new high-water mark at
// most once.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online.hpp"
#include "data/datapoint.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace f2pm::serve {

/// One queued unit of per-session scoring work, in arrival order.
struct InboxItem {
  /// True for a run boundary (fail event): reset the streaming predictor
  /// and the advisor debounce instead of scoring a datapoint.
  bool reset = false;
  data::RawDatapoint point;
  /// True for the end-of-stream marker the drain path enqueues: flush the
  /// predictor's open window (best-effort final prediction) instead of
  /// scoring a datapoint.
  bool flush = false;
};

/// State of one connected client.
struct Session {
  Session(net::TcpStream stream_in, core::AdvisorOptions advisor_options,
          std::pmr::memory_resource* memory = nullptr)
      : stream(std::move(stream_in)),
        outbound(resource(memory)),
        inbox(resource(memory)),
        scoring_batch(resource(memory)),
        reply_bytes(resource(memory)),
        advisor(advisor_options),
        last_activity(std::chrono::steady_clock::now()) {}

  net::TcpStream stream;
  net::FrameDecoder decoder;
  std::string client_id;  ///< From Hello; "" for legacy ingest clients.

  /// Set by the loop thread on Hello, read by scoring tasks (gates
  /// whether Prediction replies are produced) — hence atomic.
  std::atomic<bool> hello_received{false};

  // --- outbound queue (loop thread only) ---------------------------------
  std::pmr::vector<std::uint8_t> outbound;
  std::size_t outbound_pos = 0;  ///< Sent prefix of `outbound`.
  bool want_write = false;       ///< Mirror of the poller write interest.
  bool read_paused = false;      ///< Backpressure: inbox over the limit.
  bool peer_eof = false;  ///< Client half-closed; never re-arm reads.
  bool draining = false;  ///< Bye received or service stopping: flush+close.
  bool closed = false;    ///< Unregistered; late completions are dropped.
  /// The drain path queued the final flush marker (at most once).
  bool flush_enqueued = false;

  // --- run export (loop thread only) -------------------------------------
  /// Raw samples of the current run, retained only when the service has a
  /// run_sink; moved out (and the buffer reset) when a FailEvent completes
  /// the run. Deliberately not arena-backed: the export path moves the
  /// buffer straight into the CompletedRun handed to the sink, which a pmr
  /// vector could not do without copying. Export-enabled sessions pay
  /// amortized doubling growth here, bounded by run_export_max_samples.
  std::vector<data::RawDatapoint> run_samples;
  /// The current run overflowed run_export_max_samples: stop retaining and
  /// skip exporting it (the next run starts clean).
  bool run_export_overflow = false;

  // --- scoring pipeline --------------------------------------------------
  std::pmr::vector<InboxItem> inbox;  ///< Loop thread only.
  /// Double buffer for the inbox: dispatch swaps the filled inbox with
  /// this (empty) batch so both keep their warmed capacity — moving the
  /// inbox into the task would surrender its capacity every batch.
  /// Task-owned while in_flight; loop-owned (and empty) otherwise.
  std::pmr::vector<InboxItem> scoring_batch;
  /// Encoded Prediction frames of the in-flight batch. Written by the
  /// scoring task, copied into `outbound` by the loop when the completion
  /// drains; cleared (capacity kept) at the start of the next batch.
  std::pmr::vector<std::uint8_t> reply_bytes;
  bool in_flight = false;  ///< A scoring task currently owns state.
  std::unique_ptr<core::OnlinePredictor> predictor;  ///< Task-owned.
  core::RejuvenationAdvisor advisor;                 ///< Task-owned.
  std::uint32_t model_version = 0;                   ///< Task-owned.

  std::chrono::steady_clock::time_point last_activity;
  std::uint64_t datapoints = 0;
  std::uint64_t predictions = 0;

  [[nodiscard]] std::size_t outbound_pending() const {
    return outbound.size() - outbound_pos;
  }

  /// Pre-sizes the hot buffers for `window_samples` datapoints per
  /// aggregation window (called at Hello, before real traffic). The
  /// task-owned buffers are skipped while a batch is in flight — they
  /// warm up on their first batch instead.
  void reserve_hot_buffers(std::size_t window_samples) {
    inbox.reserve(window_samples);
    run_samples.reserve(window_samples);
    outbound.reserve(kReplyReserveBytes);
    if (!in_flight) {
      scoring_batch.reserve(window_samples);
      reply_bytes.reserve(kReplyReserveBytes);
    }
  }

 private:
  /// Initial reply/outbound capacity: far more encoded Prediction frames
  /// than one batch realistically emits, still trivial per session.
  static constexpr std::size_t kReplyReserveBytes = 4096;

  static std::pmr::memory_resource* resource(
      std::pmr::memory_resource* memory) {
    return memory != nullptr ? memory : std::pmr::get_default_resource();
  }
};

/// fd-keyed session table with admission control. Loop thread only.
/// `memory`, when non-null, backs every admitted session's hot buffers
/// (the shard passes its SessionArena).
class SessionRegistry {
 public:
  explicit SessionRegistry(std::size_t max_sessions,
                           std::pmr::memory_resource* memory = nullptr)
      : max_sessions_(max_sessions), memory_(memory) {}

  [[nodiscard]] bool can_admit() const {
    return sessions_.size() < max_sessions_;
  }

  std::shared_ptr<Session> add(net::TcpStream stream,
                               core::AdvisorOptions advisor_options) {
    auto session = std::make_shared<Session>(std::move(stream),
                                             advisor_options, memory_);
    sessions_.emplace(session->stream.fd(), session);
    return session;
  }

  [[nodiscard]] std::shared_ptr<Session> find(int fd) const {
    auto it = sessions_.find(fd);
    return it == sessions_.end() ? nullptr : it->second;
  }

  void erase(int fd) { sessions_.erase(fd); }

  [[nodiscard]] std::size_t size() const { return sessions_.size(); }

  [[nodiscard]] const std::unordered_map<int, std::shared_ptr<Session>>&
  sessions() const {
    return sessions_;
  }

 private:
  std::size_t max_sessions_;
  std::pmr::memory_resource* memory_;
  std::unordered_map<int, std::shared_ptr<Session>> sessions_;
};

}  // namespace f2pm::serve
