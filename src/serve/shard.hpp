// One reactor shard of the prediction service.
//
// A shard is a complete, self-contained serving reactor: its own event
// loop (Poller + Wakeup), its own SessionRegistry slice, its own inbox
// backpressure and idle eviction, and its own scoring ThreadPool with a
// shard-local completion queue. The steady-state path — accept, decode,
// aggregate, score, reply — touches only shard-local state plus three
// lock-free globals: the admission counter (one atomic CAS per accept),
// the ModelStore version gate (one atomic load per scoring batch) and the
// sharded-atomic obs metrics. No mutex is ever shared between shards.
//
// Cross-thread control (stop, drain, fd hand-off in kHandoff accept mode)
// goes through the Wakeup primitive, so a control message is acted on
// immediately instead of waiting out the poll timeout.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/arena.hpp"
#include "serve/model_store.hpp"
#include "serve/options.hpp"
#include "serve/session.hpp"

namespace f2pm::serve {

/// Per-shard counters: written by the owning shard's loop and pool threads
/// with relaxed atomics, summed by PredictionService::stats().
struct ShardCounters {
  std::atomic<std::size_t> sessions_active{0};
  std::atomic<std::uint64_t> sessions_accepted{0};
  std::atomic<std::uint64_t> sessions_rejected{0};
  std::atomic<std::uint64_t> sessions_evicted{0};
  std::atomic<std::uint64_t> datapoints_received{0};
  std::atomic<std::uint64_t> predictions_sent{0};
  std::atomic<std::uint64_t> windows_promoted{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> disconnects_clean{0};
  std::atomic<std::uint64_t> disconnects_truncated{0};
  std::atomic<std::uint64_t> disconnects_reset{0};
};

/// One event-loop shard. Constructed and owned by PredictionService; all
/// public methods except the accessors are the cross-thread control
/// surface (start/request_stop/join/adopt_admitted).
class ServiceShard {
 public:
  /// `listener` may be null (non-acceptor shards in kHandoff mode);
  /// `metrics_listener` is non-null on shard 0 only. `admission` is the
  /// service-wide active-session counter shared by every shard.
  ServiceShard(std::size_t index, const ServiceOptions& options,
               ModelStore& store, std::atomic<std::size_t>& admission,
               std::unique_ptr<net::TcpListener> listener,
               std::unique_ptr<net::TcpListener> metrics_listener,
               std::size_t scoring_threads);
  ServiceShard(const ServiceShard&) = delete;
  ServiceShard& operator=(const ServiceShard&) = delete;
  ~ServiceShard();

  /// kHandoff wiring: the acceptor shard round-robins fresh connections
  /// across `peers` (which includes itself). Must be set before start().
  void set_handoff_peers(std::vector<ServiceShard*> peers);

  /// Spawns the loop thread and the scoring pool.
  void start();

  /// Signals stop+drain and wakes the loop immediately. Thread-safe.
  void request_stop();

  /// Joins the loop thread (the loop drains first, bounded by
  /// drain_timeout_seconds) and then the scoring pool.
  void join();

  /// Receives an already-admitted connection from the acceptor shard
  /// (kHandoff mode): enqueue + wake. The admission slot travels with the
  /// stream and is released by this shard when the session closes.
  void adopt_admitted(net::TcpStream stream);

  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint16_t metrics_port() const noexcept {
    return metrics_listener_ ? metrics_listener_->port() : 0;
  }
  [[nodiscard]] const ShardCounters& counters() const noexcept {
    return counters_;
  }
  /// Snapshot of this shard's counters as a ServiceStats (model_version
  /// left 0; the service fills it in).
  [[nodiscard]] ServiceStats snapshot() const;

 private:
  /// Cached handles into the global obs registry, one set per shard label
  /// so /metrics breaks every serve series down by shard.
  struct Metrics {
    explicit Metrics(std::size_t shard_index);
    obs::Gauge& sessions_active;
    obs::Counter& sessions_accepted;
    obs::Counter& sessions_rejected;
    obs::Counter& sessions_evicted;
    obs::Gauge& inbox_depth;
    obs::Counter& datapoints;
    obs::Counter& predictions;
    obs::Counter& windows_promoted;
    obs::Counter& outbound_bytes;
    obs::Counter& disconnects_clean;
    obs::Counter& disconnects_truncated;
    obs::Counter& disconnects_reset;
    obs::Counter& runs_exported;
    obs::Counter& runs_export_dropped;
    obs::Histogram& batch_seconds;
  };

  /// Batch-done notice from a scoring task. The encoded reply bytes live
  /// in the session's reply_bytes scratch (task-owned until the loop
  /// processes this completion), not here — carrying a vector through the
  /// queue would allocate per batch.
  struct Completion {
    std::shared_ptr<Session> session;
    std::size_t predictions = 0;
    std::size_t promoted = 0;  ///< Cascade full-stage promotions within.
  };

  /// One plain-HTTP scrape connection on the metrics port (shard 0).
  struct MetricsConn {
    explicit MetricsConn(net::TcpStream stream_in)
        : stream(std::move(stream_in)) {}
    net::TcpStream stream;
    std::string request;
    std::string response;  ///< Non-empty once the reply is being sent.
    std::size_t sent = 0;
  };

  /// How a session's transport ended (see ServiceStats).
  enum class DisconnectKind { kClean, kTruncated, kReset };

  void note_disconnect(DisconnectKind kind);
  void run_loop();
  /// Service-wide admission: CAS-reserves one active-session slot.
  bool try_admit();
  void release_admission();
  void handle_accept();
  void drain_adopted();
  void register_session(net::TcpStream stream);
  void handle_readable(const std::shared_ptr<Session>& session);
  bool process_buffered_frames(const std::shared_ptr<Session>& session);
  void handle_writable(const std::shared_ptr<Session>& session);
  /// `frame` views the session decoder's buffer and dies at the next
  /// decoder call; anything kept is copied out here.
  bool handle_frame(const std::shared_ptr<Session>& session,
                    const net::FrameView& frame);
  /// Hands the session's buffered run to options_.run_sink (if any) as a
  /// crash-labeled CompletedRun ending at `fail_time`, then resets the
  /// buffer for the next run. Loop thread only.
  void export_run(const std::shared_ptr<Session>& session, double fail_time);
  void dispatch_scoring(const std::shared_ptr<Session>& session);
  /// Scores the session's scoring_batch (task-owned while in_flight),
  /// encoding replies into its reply_bytes scratch.
  void score_batch(const std::shared_ptr<Session>& session);
  void drain_completions();
  void queue_reply(const std::shared_ptr<Session>& session,
                   std::span<const std::uint8_t> bytes);
  void update_write_interest(const std::shared_ptr<Session>& session);
  void finish_if_drained(const std::shared_ptr<Session>& session);
  void close_session(const std::shared_ptr<Session>& session, bool evicted,
                     const std::string& reason);
  void evict_idle_sessions();
  void handle_metrics_accept();
  void handle_metrics_event(int fd, const net::Poller::Event& event);
  void close_metrics_conn(int fd);
  void shutdown_metrics_endpoint();

  const std::size_t index_;
  const ServiceOptions& options_;  ///< Owned by the service, immutable.
  ModelStore& store_;
  std::atomic<std::size_t>& admission_;  ///< Service-wide active sessions.
  std::size_t scoring_threads_;

  std::unique_ptr<net::TcpListener> listener_;  ///< May be null (handoff).
  net::Wakeup wake_;

  // kHandoff accept: the acceptor round-robins over peers_; other shards
  // receive admitted streams through the adopted_ queue. The mutex is
  // touched on accept hand-off only, never on the steady-state path.
  std::vector<ServiceShard*> peers_;
  std::size_t next_peer_ = 0;
  std::mutex adopted_mutex_;
  std::vector<net::TcpStream> adopted_;
  std::atomic<bool> adopted_pending_{false};

  // Metrics endpoint (shard 0, loop thread only past construction).
  std::unique_ptr<net::TcpListener> metrics_listener_;
  std::unordered_map<int, MetricsConn> metrics_conns_;

  ShardCounters counters_;
  Metrics metrics_;

  /// Backs every session's hot buffers (and predictor windows). Declared
  /// before the registry and the completion queue so it outlives every
  /// Session that allocates from it; the scoring pool is joined (pool_ is
  /// declared last) before any of this is destroyed.
  SessionArena arena_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  /// Double buffer for completions_: drain swaps instead of moving out so
  /// both vectors keep their capacity (one batch queue growth, ever).
  std::vector<Completion> completions_scratch_;

  std::atomic<bool> stopping_{false};
  bool drain_started_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};
  std::chrono::steady_clock::time_point last_model_poll_{};

  // Loop-thread state (constructed before the thread starts).
  net::Poller poller_;
  SessionRegistry registry_;

  // Declared last so they are destroyed first: the pool join must happen
  // while the completion queue and store are still alive, and the loop
  // thread join before that.
  std::unique_ptr<parallel::ThreadPool> pool_;
  std::thread thread_;
};

}  // namespace f2pm::serve
