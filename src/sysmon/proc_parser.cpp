#include "sysmon/proc_parser.hpp"

#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace f2pm::sysmon {

namespace {

/// Extracts the numeric value (in KiB) of a "Key:   12345 kB" line.
double meminfo_value(std::string_view line) {
  const std::size_t colon = line.find(':');
  std::string_view rest = line.substr(colon + 1);
  // Strip the trailing unit if present.
  const std::size_t kb = rest.rfind("kB");
  if (kb != std::string_view::npos) rest = rest.substr(0, kb);
  return util::parse_double(util::trim(rest));
}

}  // namespace

MemInfo parse_meminfo(std::string_view content) {
  MemInfo info;
  std::istringstream in{std::string(content)};
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view view = line;
    if (util::starts_with(view, "MemTotal:")) {
      info.total_kb = meminfo_value(view);
    } else if (util::starts_with(view, "MemFree:")) {
      info.free_kb = meminfo_value(view);
    } else if (util::starts_with(view, "Buffers:")) {
      info.buffers_kb = meminfo_value(view);
    } else if (util::starts_with(view, "Cached:")) {
      info.cached_kb = meminfo_value(view);
    } else if (util::starts_with(view, "Shmem:")) {
      info.shmem_kb = meminfo_value(view);
    } else if (util::starts_with(view, "SwapTotal:")) {
      info.swap_total_kb = meminfo_value(view);
    } else if (util::starts_with(view, "SwapFree:")) {
      info.swap_free_kb = meminfo_value(view);
    }
  }
  return info;
}

CpuJiffies parse_proc_stat(std::string_view content) {
  std::istringstream in{std::string(content)};
  std::string line;
  while (std::getline(in, line)) {
    if (!util::starts_with(line, "cpu ")) continue;
    std::istringstream fields(line.substr(4));
    CpuJiffies jiffies;
    if (!(fields >> jiffies.user >> jiffies.nice >> jiffies.system >>
          jiffies.idle)) {
      throw std::invalid_argument("proc_stat: malformed cpu line");
    }
    // The remaining fields appeared over kernel history; default to 0.
    fields >> jiffies.iowait >> jiffies.irq >> jiffies.softirq >>
        jiffies.steal;
    return jiffies;
  }
  throw std::invalid_argument("proc_stat: no aggregate cpu line");
}

CpuPercentages cpu_percentages(const CpuJiffies& earlier,
                               const CpuJiffies& later) {
  auto delta = [](std::uint64_t to, std::uint64_t from) -> double {
    return to >= from ? static_cast<double>(to - from) : 0.0;
  };
  const double user = delta(later.user, earlier.user);
  const double nice = delta(later.nice, earlier.nice);
  const double system = delta(later.system, earlier.system) +
                        delta(later.irq, earlier.irq) +
                        delta(later.softirq, earlier.softirq);
  const double idle = delta(later.idle, earlier.idle);
  const double iowait = delta(later.iowait, earlier.iowait);
  const double steal = delta(later.steal, earlier.steal);
  const double total = user + nice + system + idle + iowait + steal;
  CpuPercentages pct;
  if (total <= 0.0) {
    pct.idle = 100.0;
    return pct;
  }
  pct.user = 100.0 * user / total;
  pct.nice = 100.0 * nice / total;
  pct.system = 100.0 * system / total;
  pct.iowait = 100.0 * iowait / total;
  pct.steal = 100.0 * steal / total;
  pct.idle = 100.0 * idle / total;
  return pct;
}

int parse_loadavg_threads(std::string_view content) {
  // Format: "0.42 0.37 0.31 2/1234 5678" -> total tasks = 1234.
  const std::size_t slash = content.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("loadavg: missing runnable/total field");
  }
  std::size_t end = slash + 1;
  while (end < content.size() &&
         content[end] >= '0' && content[end] <= '9') {
    ++end;
  }
  if (end == slash + 1) {
    throw std::invalid_argument("loadavg: malformed total task count");
  }
  return static_cast<int>(
      util::parse_int(content.substr(slash + 1, end - slash - 1)));
}

}  // namespace f2pm::sysmon
