#include "sysmon/real_injectors.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace f2pm::sysmon {

RealMemoryLeaker::RealMemoryLeaker(RealLeakConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

RealMemoryLeaker::~RealMemoryLeaker() { stop(); }

void RealMemoryLeaker::start() {
  if (running_.load()) {
    throw std::logic_error("RealMemoryLeaker: already running");
  }
  mean_interval_ = rng_.uniform(config_.mean_interval_min_seconds,
                                config_.mean_interval_max_seconds);
  stop_requested_ = false;
  running_.store(true);
  thread_ = std::thread([this] { leak_loop(); });
}

void RealMemoryLeaker::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
  chunks_.clear();  // release the "leaked" memory on teardown
  leaked_bytes_.store(0);
}

void RealMemoryLeaker::leak_loop() {
  while (true) {
    const double wait_seconds = rng_.exponential(mean_interval_);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::duration<double>(wait_seconds),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    const auto size = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(config_.size_min_bytes),
        static_cast<std::int64_t>(config_.size_max_bytes)));
    if (leaked_bytes_.load() + size > config_.max_total_bytes) {
      return;  // safety cap reached; stay alive doing nothing? no: quit
    }
    auto chunk = std::make_unique<char[]>(size);
    // Writing dummy data is essential (paper §III-E): untouched pages are
    // only virtual and never show up in the memory statistics.
    std::memset(chunk.get(), 0x5A, size);
    chunks_.push_back(std::move(chunk));
    leaked_bytes_.fetch_add(size);
    leaks_performed_.fetch_add(1);
  }
}

RealThreadLeaker::RealThreadLeaker(RealThreadConfig config,
                                   std::uint64_t seed)
    : config_(config), rng_(seed) {}

RealThreadLeaker::~RealThreadLeaker() { stop(); }

void RealThreadLeaker::start() {
  if (running_.load()) {
    throw std::logic_error("RealThreadLeaker: already running");
  }
  mean_interval_ = rng_.uniform(config_.mean_interval_min_seconds,
                                config_.mean_interval_max_seconds);
  stop_requested_ = false;
  running_.store(true);
  spawner_ = std::thread([this] { spawn_loop(); });
}

void RealThreadLeaker::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (spawner_.joinable()) spawner_.join();
  for (auto& stray : strays_) {
    if (stray.joinable()) stray.join();
  }
  strays_.clear();
  running_.store(false);
}

void RealThreadLeaker::spawn_loop() {
  while (true) {
    const double wait_seconds = rng_.exponential(mean_interval_);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::duration<double>(wait_seconds),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
      if (strays_.size() >= config_.max_threads) return;
      // An "unterminated" thread: parks forever (until teardown reaps it).
      strays_.emplace_back([this] {
        std::unique_lock<std::mutex> stray_lock(mutex_);
        cv_.wait(stray_lock, [this] { return stop_requested_; });
      });
    }
    threads_spawned_.fetch_add(1);
  }
}

}  // namespace f2pm::sysmon
