// Real-host anomaly injection utilities (paper §III-E), as opposed to the
// simulator's accounting-only injectors:
//
//  * RealMemoryLeaker actually allocates variable-size chunks and WRITES
//    dummy data into them — the paper is explicit that writing is
//    essential, otherwise the kernel never backs the allocation with
//    physical pages. Sizes are uniform, inter-arrival times exponential
//    with a mean drawn uniformly at startup, exactly like the synthetic
//    generator.
//  * RealThreadLeaker spawns threads that never do useful work again —
//    "unterminated threads". (For testability they park on a condition
//    variable and are reaped on stop()/destruction instead of leaking
//    past the process.)
//
// Both carry hard safety caps so a demo cannot take down the host; they
// exist to stress a monitored machine while the FMC collects training
// data, complementing real-workload collection in a controlled way.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace f2pm::sysmon {

/// Memory-leak generator parameters.
struct RealLeakConfig {
  std::size_t size_min_bytes = 64 * 1024;
  std::size_t size_max_bytes = 1024 * 1024;
  double mean_interval_min_seconds = 0.1;
  double mean_interval_max_seconds = 1.0;
  /// Hard cap: the leaker stops allocating past this total.
  std::size_t max_total_bytes = 256 * 1024 * 1024;
};

/// Background thread that leaks dirtied heap memory on the §III-E
/// schedule until stop() or the safety cap.
class RealMemoryLeaker {
 public:
  RealMemoryLeaker(RealLeakConfig config, std::uint64_t seed);
  RealMemoryLeaker(const RealMemoryLeaker&) = delete;
  RealMemoryLeaker& operator=(const RealMemoryLeaker&) = delete;
  ~RealMemoryLeaker();

  /// Draws the run's inter-arrival mean and starts the leak thread.
  /// Throws std::logic_error when already running.
  void start();

  /// Stops the leak thread and frees everything that was "leaked".
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::size_t leaked_bytes() const {
    return leaked_bytes_.load();
  }
  [[nodiscard]] std::size_t leaks_performed() const {
    return leaks_performed_.load();
  }
  [[nodiscard]] double chosen_mean_interval() const {
    return mean_interval_;
  }

 private:
  void leak_loop();

  RealLeakConfig config_;
  util::Rng rng_;
  double mean_interval_ = 0.0;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> leaked_bytes_{0};
  std::atomic<std::size_t> leaks_performed_{0};
  std::vector<std::unique_ptr<char[]>> chunks_;
};

/// Unterminated-thread generator parameters.
struct RealThreadConfig {
  double mean_interval_min_seconds = 0.2;
  double mean_interval_max_seconds = 2.0;
  /// Hard cap on stray threads.
  std::size_t max_threads = 64;
};

/// Background generator that spawns idle "unterminated" threads on an
/// exponential schedule until stop() or the cap.
class RealThreadLeaker {
 public:
  RealThreadLeaker(RealThreadConfig config, std::uint64_t seed);
  RealThreadLeaker(const RealThreadLeaker&) = delete;
  RealThreadLeaker& operator=(const RealThreadLeaker&) = delete;
  ~RealThreadLeaker();

  void start();
  /// Reaps the spawner and every stray thread.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::size_t threads_spawned() const {
    return threads_spawned_.load();
  }
  [[nodiscard]] double chosen_mean_interval() const {
    return mean_interval_;
  }

 private:
  void spawn_loop();

  RealThreadConfig config_;
  util::Rng rng_;
  double mean_interval_ = 0.0;
  std::thread spawner_;
  std::vector<std::thread> strays_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> threads_spawned_{0};
};

}  // namespace f2pm::sysmon
