// Live feature source for real Linux hosts: reads /proc/meminfo,
// /proc/stat and /proc/loadavg and assembles RawDatapoints in the exact
// schema the training pipeline uses. This is the production counterpart
// of the simulator's FeatureMonitor — plug it into the FMC and a model
// trained on the simulated testbed format can score a real machine.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "data/datapoint.hpp"
#include "sysmon/proc_parser.hpp"

namespace f2pm::sysmon {

/// Samples the host's /proc files into RawDatapoints. The first sample
/// reports all-idle CPU (percentages need two jiffy snapshots).
class ProcFeatureSource {
 public:
  /// `proc_root` is overridable for tests (defaults to "/proc").
  explicit ProcFeatureSource(std::string proc_root = "/proc");

  /// Reads the current system state. tgen is the elapsed wall-clock time
  /// since this source was constructed. Throws std::runtime_error when
  /// the proc files cannot be read or parsed.
  data::RawDatapoint sample();

  /// True when the proc filesystem looks usable (all three files open).
  [[nodiscard]] bool available() const;

 private:
  std::string proc_root_;
  std::chrono::steady_clock::time_point start_;
  std::optional<CpuJiffies> previous_jiffies_;
};

}  // namespace f2pm::sysmon
