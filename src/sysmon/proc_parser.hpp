// Parsers for the Linux /proc text formats the Feature Monitor Client
// reads on a real host: /proc/meminfo (memory & swap), /proc/stat (CPU
// jiffies) and /proc/loadavg (thread census). The parsers are pure
// string-to-struct functions so they are unit-testable with synthetic
// content; proc_source.hpp wires them to the live files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace f2pm::sysmon {

/// Subset of /proc/meminfo the datapoint schema needs, in KiB.
struct MemInfo {
  double total_kb = 0.0;
  double free_kb = 0.0;
  double buffers_kb = 0.0;
  double cached_kb = 0.0;
  double shmem_kb = 0.0;
  double swap_total_kb = 0.0;
  double swap_free_kb = 0.0;

  /// mem_used the way `free(1)` computes it: total - free - buffers -
  /// cached.
  [[nodiscard]] double used_kb() const {
    return total_kb - free_kb - buffers_kb - cached_kb;
  }
  [[nodiscard]] double swap_used_kb() const {
    return swap_total_kb - swap_free_kb;
  }
};

/// Parses /proc/meminfo content. Missing keys stay zero; malformed numbers
/// throw std::invalid_argument.
MemInfo parse_meminfo(std::string_view content);

/// The aggregate "cpu" jiffy counters of /proc/stat.
struct CpuJiffies {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
  std::uint64_t steal = 0;

  [[nodiscard]] std::uint64_t total() const {
    return user + nice + system + idle + iowait + irq + softirq + steal;
  }
};

/// Parses the first "cpu " line of /proc/stat. Throws
/// std::invalid_argument when the line is absent or malformed.
CpuJiffies parse_proc_stat(std::string_view content);

/// CPU usage percentages over an interval, from two jiffy snapshots.
struct CpuPercentages {
  double user = 0.0;
  double nice = 0.0;
  double system = 0.0;  ///< Includes irq + softirq, as top(1) groups them.
  double iowait = 0.0;
  double steal = 0.0;
  double idle = 0.0;
};

/// Percentage deltas between two snapshots (later minus earlier). A zero
/// total delta yields all-idle. Counter wrap (later < earlier) is treated
/// as zero per field.
CpuPercentages cpu_percentages(const CpuJiffies& earlier,
                               const CpuJiffies& later);

/// Parses /proc/loadavg; returns the total thread/task count (the
/// denominator of the "runnable/total" field). Throws on malformed input.
int parse_loadavg_threads(std::string_view content);

}  // namespace f2pm::sysmon
