#include "sysmon/proc_source.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace f2pm::sysmon {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool readable(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

ProcFeatureSource::ProcFeatureSource(std::string proc_root)
    : proc_root_(std::move(proc_root)),
      start_(std::chrono::steady_clock::now()) {}

bool ProcFeatureSource::available() const {
  return readable(proc_root_ + "/meminfo") &&
         readable(proc_root_ + "/stat") &&
         readable(proc_root_ + "/loadavg");
}

data::RawDatapoint ProcFeatureSource::sample() {
  data::RawDatapoint point;
  point.tgen = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                   .count();

  const MemInfo memory = parse_meminfo(read_file(proc_root_ + "/meminfo"));
  point[data::FeatureId::kMemUsed] = memory.used_kb();
  point[data::FeatureId::kMemFree] = memory.free_kb;
  point[data::FeatureId::kMemShared] = memory.shmem_kb;
  point[data::FeatureId::kMemBuffers] = memory.buffers_kb;
  point[data::FeatureId::kMemCached] = memory.cached_kb;
  point[data::FeatureId::kSwapUsed] = memory.swap_used_kb();
  point[data::FeatureId::kSwapFree] = memory.swap_free_kb;

  point[data::FeatureId::kNumThreads] = static_cast<double>(
      parse_loadavg_threads(read_file(proc_root_ + "/loadavg")));

  const CpuJiffies jiffies =
      parse_proc_stat(read_file(proc_root_ + "/stat"));
  const CpuPercentages pct =
      previous_jiffies_ ? cpu_percentages(*previous_jiffies_, jiffies)
                        : CpuPercentages{.idle = 100.0};
  previous_jiffies_ = jiffies;
  point[data::FeatureId::kCpuUser] = pct.user;
  point[data::FeatureId::kCpuNice] = pct.nice;
  point[data::FeatureId::kCpuSystem] = pct.system;
  point[data::FeatureId::kCpuIoWait] = pct.iowait;
  point[data::FeatureId::kCpuSteal] = pct.steal;
  point[data::FeatureId::kCpuIdle] = pct.idle;
  return point;
}

}  // namespace f2pm::sysmon
