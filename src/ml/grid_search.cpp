#include "ml/grid_search.hpp"

#include <algorithm>
#include <stdexcept>

#include "ml/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace f2pm::ml {

std::vector<util::Config> enumerate_grid(const ParameterGrid& grid,
                                         const util::Config& base) {
  std::vector<util::Config> configs{base};
  for (const auto& [key, values] : grid) {
    if (values.empty()) {
      throw std::invalid_argument("grid_search: empty value list for key " +
                                  key);
    }
    std::vector<util::Config> expanded;
    expanded.reserve(configs.size() * values.size());
    for (const auto& config : configs) {
      for (const auto& value : values) {
        util::Config next = config;
        next.set(key, value);
        expanded.push_back(std::move(next));
      }
    }
    configs = std::move(expanded);
  }
  return configs;
}

GridSearchResult grid_search(const std::string& name,
                             const ParameterGrid& grid,
                             const linalg::Matrix& x,
                             std::span<const double> y, std::size_t folds,
                             util::Rng& rng, double soft_threshold,
                             const util::Config& base, bool parallel) {
  GridSearchResult result;
  // A fixed fold assignment across grid points makes the comparison fair:
  // derive one child RNG and reuse its seed for every point. It also makes
  // the parallel path deterministic: each point owns a private Rng seeded
  // identically, writes only its own slot, and the stable sort below sees
  // the same enumeration order either way.
  const std::uint64_t fold_seed = rng();
  const std::vector<util::Config> configs = enumerate_grid(grid, base);
  result.points.resize(configs.size());
  const auto run_point = [&](std::size_t index) {
    const util::Config& params = configs[index];
    util::Rng fold_rng(fold_seed);
    const CrossValidationResult cv = k_fold_cross_validation(
        [&name, &params] { return make_model(name, params); }, x, y, folds,
        fold_rng, soft_threshold);
    GridPoint& point = result.points[index];
    point.params = params;
    point.mean_mae = cv.mean_mae;
    point.std_mae = cv.std_mae;
    point.mean_soft_mae = cv.mean_soft_mae;
    point.mean_rae = cv.mean_rae;
    point.mean_training_seconds = cv.mean_training_seconds;
  };
  if (parallel) {
    parallel::parallel_for(parallel::ThreadPool::global(), 0, configs.size(),
                           run_point);
  } else {
    for (std::size_t index = 0; index < configs.size(); ++index) {
      run_point(index);
    }
  }
  std::stable_sort(result.points.begin(), result.points.end(),
                   [](const GridPoint& a, const GridPoint& b) {
                     return a.mean_mae < b.mean_mae;
                   });
  return result;
}

}  // namespace f2pm::ml
