#include "ml/kernel_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2pm::ml {

KernelRowCache::KernelRowCache(const KernelParams& params,
                               const linalg::Matrix& x,
                               std::size_t budget_bytes)
    : params_(params), x_(x) {
  const std::size_t n = x.rows();
  if (n == 0) {
    throw std::invalid_argument("KernelRowCache: empty matrix");
  }
  norms_ = row_squared_norms(x);
  diag_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag_[i] = kernel_value(params_, x.row(i), x.row(i));
  }
  const std::size_t row_bytes = n * sizeof(double);
  // An SMO pair update touches two rows at once, so two rows is the floor
  // below which the cache cannot honour its span-validity contract.
  max_rows_ = std::clamp<std::size_t>(budget_bytes / row_bytes, 2, n);
  slot_of_row_.assign(n, -1);
  stats_.budget_bytes = budget_bytes;
}

std::span<const double> KernelRowCache::row(std::size_t i) {
  const std::size_t n = x_.rows();
  if (i >= n) {
    throw std::invalid_argument("KernelRowCache::row: index out of range");
  }
  if (slot_of_row_[i] >= 0) {
    ++stats_.hits;
    const auto slot = static_cast<std::size_t>(slot_of_row_[i]);
    lru_.splice(lru_.begin(), lru_, lru_pos_[slot]);
    return {slots_[slot]};
  }
  ++stats_.misses;
  std::size_t slot;
  if (slots_.size() < max_rows_) {
    slot = slots_.size();
    slots_.emplace_back(n);
    row_of_slot_.push_back(i);
    lru_.push_front(slot);
    lru_pos_.push_back(lru_.begin());
    stats_.peak_bytes =
        std::max(stats_.peak_bytes, slots_.size() * n * sizeof(double));
  } else {
    // Reuse the least recently used slot. The most recent row (the other
    // half of the current SMO pair) is at the front, so with max_rows >= 2
    // it is never the one reclaimed.
    slot = lru_.back();
    slot_of_row_[row_of_slot_[slot]] = -1;
    row_of_slot_[slot] = i;
    lru_.splice(lru_.begin(), lru_, lru_pos_[slot]);
    ++stats_.evictions;
  }
  slot_of_row_[i] = static_cast<std::int64_t>(slot);
  kernel_row(params_, x_, i, norms_, slots_[slot]);
  return {slots_[slot]};
}

}  // namespace f2pm::ml
