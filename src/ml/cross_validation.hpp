// k-fold cross-validation over a design matrix: the incremental-accuracy
// assessment §III-A calls for ("if the estimated accuracy is not
// sufficient, further system runs can be executed").
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {

/// Per-fold reports plus aggregate statistics.
struct CrossValidationResult {
  std::vector<EvaluationReport> folds;
  double mean_mae = 0.0;
  double std_mae = 0.0;
  double mean_soft_mae = 0.0;
  double mean_rae = 0.0;
  double mean_training_seconds = 0.0;
};

/// Runs k-fold CV. `factory` builds a fresh unfitted model per fold.
/// Rows are shuffled once with `rng`; each fold serves as validation once.
/// With `parallel` set, folds run concurrently on the global thread pool;
/// `factory` must then be callable from multiple threads at once. Results
/// are written by fold index and aggregated in fold order, so the outcome
/// is bitwise-identical to the serial run for the same `rng` state,
/// regardless of thread count. Throws std::invalid_argument when k < 2 or
/// the data has fewer than k rows.
CrossValidationResult k_fold_cross_validation(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const linalg::Matrix& x, std::span<const double> y, std::size_t k,
    util::Rng& rng, double soft_threshold, bool parallel = false);

}  // namespace f2pm::ml
