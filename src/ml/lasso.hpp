// Lasso (L1-regularized least squares), paper Eq. (2), in both of its F2PM
// roles:
//   * Lasso Regularization (§III-C): run over a grid of λ values; the
//     features whose β weight stays non-zero form the reduced training set
//     (Fig. 4 and Table I of the paper);
//   * Lasso as a Predictor (§III-D): the fitted β used directly as a
//     closed-form linear model.
//
// The solver is cyclic coordinate descent with soft-thresholding, run on
// RAW (unstandardized) features — this is what makes the paper's λ grid of
// 10^0..10^9 meaningful, since system features live on scales from
// fractions of a percent to millions of KiB. The objective is the
// total-squared-error form ||y - Xβ||² + λ||β||₁ (Eq. 2 times n, i.e. λ is
// rescaled by the dataset size relative to the mean-error form); see the
// note in lasso.cpp. An unpenalized intercept is handled by centering.
#pragma once

#include <vector>

#include "ml/model.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {

/// Solver knobs shared by the predictor and the regularization path.
struct LassoOptions {
  double lambda = 1.0;         ///< L1 strength (λ of Eq. 2).
  std::size_t max_iterations = 1000;  ///< Full coordinate sweeps.
  double tolerance = 1e-7;     ///< Stop when max coefficient step, scaled by
                               ///< the column norm, drops below this.
  /// Coefficients with |β_j| below this (after convergence) are snapped to
  /// exactly zero so "selected features" is well defined.
  double zero_threshold = 1e-12;
};

/// Lasso as a predictor (one fixed λ).
class Lasso final : public Regressor {
 public:
  explicit Lasso(LassoOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "lasso"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override {
    return coefficients_.size();
  }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<Lasso> load(util::BinaryReader& reader);

  [[nodiscard]] const LassoOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }
  [[nodiscard]] double intercept() const { return intercept_; }

  /// Indices of features with non-zero weight.
  [[nodiscard]] std::vector<std::size_t> selected_features() const;

  /// Warm-starts the next fit() from the given coefficients (used by the
  /// regularization path, which sweeps λ from large to small).
  void warm_start(std::vector<double> coefficients);

 private:
  LassoOptions options_;
  std::vector<double> coefficients_;
  std::vector<double> warm_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

/// One entry of the regularization path.
struct LassoPathEntry {
  double lambda = 0.0;
  std::vector<double> coefficients;      ///< β on the raw feature scale.
  double intercept = 0.0;
  std::vector<std::size_t> selected;     ///< Non-zero coefficient indices.
};

/// Fits the Lasso for every λ in `lambdas` (any order; internally solved
/// from the largest λ down with warm starts, which is both faster and more
/// stable). Entries are returned in the order of `lambdas`.
std::vector<LassoPathEntry> lasso_path(const linalg::Matrix& x,
                                       std::span<const double> y,
                                       const std::vector<double>& lambdas,
                                       const LassoOptions& base = {});

/// λ above which the Lasso solution is all-zeros (max |x_jᵀ(y - ȳ)| * 2/n).
double lasso_lambda_max(const linalg::Matrix& x, std::span<const double> y);

}  // namespace f2pm::ml
