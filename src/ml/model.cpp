#include "ml/model.hpp"

#include <ostream>
#include <stdexcept>

#include "ml/registry.hpp"

namespace f2pm::ml {

std::vector<double> Regressor::predict(const linalg::Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_row(x.row(r)));
  }
  return out;
}

void Regressor::check_fit_args(const linalg::Matrix& x,
                               std::span<const double> y) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("Regressor::fit: empty training set");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("Regressor::fit: x/y row count mismatch");
  }
}

void Regressor::check_predict_args(std::span<const double> row) const {
  if (!is_fitted()) {
    throw std::logic_error("Regressor: predict before fit");
  }
  if (row.size() != num_inputs()) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
}

void save_model(const Regressor& model, std::ostream& out) {
  util::BinaryWriter writer(out);
  writer.write_string(model.name());
  model.save(writer);
}

std::unique_ptr<Regressor> load_model(std::istream& in) {
  util::BinaryReader reader(in);
  const std::string tag = reader.read_string();
  return load_model_body(tag, reader);
}

}  // namespace f2pm::ml
