// Ordinary least-squares Linear Regression (paper §III-D, Eq. 3), solved
// via Householder QR on the column-augmented design matrix [X | 1].
#pragma once

#include <vector>

#include "ml/model.hpp"

namespace f2pm::ml {

/// y ≈ x·β + intercept, fitted by least squares.
class LinearRegression final : public Regressor {
 public:
  LinearRegression() = default;

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override {
    return coefficients_.size();
  }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<LinearRegression> load(util::BinaryReader& reader);

  /// Fitted slope per input column.
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }
  [[nodiscard]] double intercept() const { return intercept_; }

 private:
  std::vector<double> coefficients_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
