// Hyperparameter grid search with k-fold cross-validation. F2PM's
// model-generation phase runs each method at fixed hyperparameters; this
// utility lets a user tune a method before committing it to the pipeline
// (kernel widths, tree depths, λ grids, ...), selecting by CV mean MAE.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/cross_validation.hpp"
#include "util/config.hpp"

namespace f2pm::ml {

/// A parameter grid: Config key -> candidate values (as Config strings).
using ParameterGrid = std::map<std::string, std::vector<std::string>>;

/// One evaluated grid point.
struct GridPoint {
  util::Config params;
  double mean_mae = 0.0;
  double std_mae = 0.0;
  double mean_soft_mae = 0.0;
  double mean_rae = 0.0;
  double mean_training_seconds = 0.0;
};

/// Grid-search result: every point, best first.
struct GridSearchResult {
  std::vector<GridPoint> points;  ///< Sorted ascending by mean_mae.

  [[nodiscard]] const GridPoint& best() const { return points.front(); }
};

/// Exhaustively evaluates the cartesian product of `grid` for model
/// `name` with k-fold CV. `base` supplies values for keys not in the
/// grid. With `parallel` set, grid points run concurrently on the global
/// thread pool; every point reuses the same fold seed either way, so the
/// result (points, order, statistics) is bitwise-identical to the serial
/// run for the same `rng` state. Throws std::invalid_argument on an empty
/// grid dimension.
GridSearchResult grid_search(const std::string& name,
                             const ParameterGrid& grid,
                             const linalg::Matrix& x,
                             std::span<const double> y, std::size_t folds,
                             util::Rng& rng, double soft_threshold,
                             const util::Config& base = {},
                             bool parallel = false);

/// Enumerates the cartesian product of a grid as Config overlays (exposed
/// for tests and for custom search loops).
std::vector<util::Config> enumerate_grid(const ParameterGrid& grid,
                                         const util::Config& base);

}  // namespace f2pm::ml
