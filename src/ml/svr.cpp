#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace f2pm::ml {

namespace {

// Guard for non-positive-curvature pair subproblems (LIBSVM's TAU).
constexpr double kTau = 1e-12;

}  // namespace

KernelSvr::KernelSvr(SvrOptions options) : options_(options) {
  if (options_.c <= 0.0) {
    throw std::invalid_argument("KernelSvr: C must be > 0");
  }
  if (options_.epsilon < 0.0) {
    throw std::invalid_argument("KernelSvr: epsilon must be >= 0");
  }
}

void KernelSvr::fit(const linalg::Matrix& x_raw, std::span<const double> y_raw) {
  check_fit_args(x_raw, y_raw);
  num_inputs_ = x_raw.cols();
  input_scaler_ = data::Standardizer::fit(x_raw);
  target_scaler_ = data::TargetScaler::fit(
      std::vector<double>(y_raw.begin(), y_raw.end()));
  const linalg::Matrix x = input_scaler_.transform(x_raw);
  const std::vector<double> y = target_scaler_.transform(
      std::vector<double>(y_raw.begin(), y_raw.end()));

  fitted_kernel_ = options_.kernel;
  fitted_kernel_.gamma = resolve_gamma(options_.kernel, x.cols());

  const std::size_t n = x.rows();
  const double c = options_.c;
  const double eps = options_.epsilon;

  // SMO over the 2n-variable dual: t < n are the α (sign +1) variables,
  // t >= n the α* (sign -1) variables; Q_tt' = s_t s_t' K_{t%n, t'%n}.
  const linalg::Matrix k = kernel_matrix(fitted_kernel_, x);
  std::vector<double> alpha(2 * n, 0.0);
  std::vector<double> grad(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = eps - y[i];       // p for the α block
    grad[n + i] = eps + y[i];   // p for the α* block
  }
  auto sign_of = [n](std::size_t t) { return t < n ? 1.0 : -1.0; };
  auto base_of = [n](std::size_t t) { return t < n ? t : t - n; };

  iterations_used_ = 0;
  const std::size_t size = 2 * n;
  while (iterations_used_ < options_.max_iterations) {
    // WSS-1: maximal violating pair.
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    std::size_t i = size;
    std::size_t j = size;
    for (std::size_t t = 0; t < size; ++t) {
      const double s = sign_of(t);
      const double score = -s * grad[t];
      const bool in_up = (s > 0.0 && alpha[t] < c) || (s < 0.0 && alpha[t] > 0.0);
      const bool in_low = (s < 0.0 && alpha[t] < c) || (s > 0.0 && alpha[t] > 0.0);
      if (in_up && score > m_up) {
        m_up = score;
        i = t;
      }
      if (in_low && score < m_low) {
        m_low = score;
        j = t;
      }
    }
    if (i == size || j == size || m_up - m_low < options_.tolerance) break;

    const double si = sign_of(i);
    const double sj = sign_of(j);
    const std::size_t bi = base_of(i);
    const std::size_t bj = base_of(j);
    const double kii = k(bi, bi);
    const double kjj = k(bj, bj);
    const double kij = k(bi, bj);
    const double old_ai = alpha[i];
    const double old_aj = alpha[j];

    if (si != sj) {
      double quad = kii + kjj + 2.0 * kij;  // Q_ii + Q_jj + 2 Q_ij (s_i≠s_j)
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad[i] - grad[j]) / quad;
      const double diff = alpha[i] - alpha[j];
      alpha[i] += delta;
      alpha[j] += delta;
      if (diff > 0.0) {
        if (alpha[j] < 0.0) {
          alpha[j] = 0.0;
          alpha[i] = diff;
        }
      } else {
        if (alpha[i] < 0.0) {
          alpha[i] = 0.0;
          alpha[j] = -diff;
        }
      }
      if (diff > 0.0) {
        if (alpha[i] > c) {
          alpha[i] = c;
          alpha[j] = c - diff;
        }
      } else {
        if (alpha[j] > c) {
          alpha[j] = c;
          alpha[i] = c + diff;
        }
      }
    } else {
      double quad = kii + kjj - 2.0 * kij;  // Q_ii + Q_jj - 2 Q_ij (s_i=s_j)
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad[i] - grad[j]) / quad;
      const double sum = alpha[i] + alpha[j];
      alpha[i] -= delta;
      alpha[j] += delta;
      if (sum > c) {
        if (alpha[i] > c) {
          alpha[i] = c;
          alpha[j] = sum - c;
        }
      } else {
        if (alpha[j] < 0.0) {
          alpha[j] = 0.0;
          alpha[i] = sum;
        }
      }
      if (sum > c) {
        if (alpha[j] > c) {
          alpha[j] = c;
          alpha[i] = sum - c;
        }
      } else {
        if (alpha[i] < 0.0) {
          alpha[i] = 0.0;
          alpha[j] = sum;
        }
      }
    }

    const double delta_i = alpha[i] - old_ai;
    const double delta_j = alpha[j] - old_aj;
    if (delta_i == 0.0 && delta_j == 0.0) {
      ++iterations_used_;
      continue;
    }
    // G_t += Q_ti Δα_i + Q_tj Δα_j for every variable t.
    for (std::size_t t = 0; t < size; ++t) {
      const double st = sign_of(t);
      const std::size_t bt = base_of(t);
      grad[t] += st * (si * k(bt, bi) * delta_i + sj * k(bt, bj) * delta_j);
    }
    ++iterations_used_;
  }

  // Collapse the doubled variables: θ_i = α_i - α*_i.
  std::vector<double> theta(n);
  for (std::size_t t = 0; t < n; ++t) theta[t] = alpha[t] - alpha[n + t];

  // Bias from the KKT conditions. g_i = Σ_j θ_j K_ij; a free α (resp. α*)
  // pins b = y - ε - g (resp. y + ε - g); otherwise bound constraints give
  // an interval and we take its midpoint.
  std::vector<double> g(n, 0.0);
  for (std::size_t jcol = 0; jcol < n; ++jcol) {
    if (theta[jcol] == 0.0) continue;
    for (std::size_t irow = 0; irow < n; ++irow) {
      g[irow] += theta[jcol] * k(irow, jcol);
    }
  }
  double free_sum = 0.0;
  std::size_t free_count = 0;
  double lower = -std::numeric_limits<double>::infinity();
  double upper = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < n; ++t) {
    const double up_b = y[t] - eps - g[t];    // b value implied by α_t
    const double dn_b = y[t] + eps - g[t];    // b value implied by α*_t
    if (alpha[t] > 0.0 && alpha[t] < c) {
      free_sum += up_b;
      ++free_count;
    }
    if (alpha[n + t] > 0.0 && alpha[n + t] < c) {
      free_sum += dn_b;
      ++free_count;
    }
    if (alpha[t] == 0.0) upper = std::min(upper, dn_b);
    if (alpha[t] >= c) lower = std::max(lower, up_b);
    if (alpha[n + t] == 0.0) lower = std::max(lower, up_b);
    if (alpha[n + t] >= c) upper = std::min(upper, dn_b);
  }
  if (free_count > 0) {
    bias_ = free_sum / static_cast<double>(free_count);
  } else if (std::isfinite(lower) && std::isfinite(upper)) {
    bias_ = (lower + upper) / 2.0;
  } else {
    bias_ = 0.0;
  }

  // Keep only the support vectors.
  std::vector<std::size_t> sv_rows;
  dual_coeffs_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (theta[t] != 0.0) {
      sv_rows.push_back(t);
      dual_coeffs_.push_back(theta[t]);
    }
  }
  support_ = x.select_rows(sv_rows);
  fitted_ = true;
}

double KernelSvr::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  // Standardize the input row with the training scalers.
  std::vector<double> scaled(row.size());
  const auto& means = input_scaler_.means();
  const auto& scales = input_scaler_.scales();
  for (std::size_t c = 0; c < row.size(); ++c) {
    scaled[c] = (row[c] - means[c]) / scales[c];
  }
  double value = bias_;
  for (std::size_t s = 0; s < support_.rows(); ++s) {
    value += dual_coeffs_[s] *
             kernel_value(fitted_kernel_, support_.row(s), scaled);
  }
  return target_scaler_.inverse(value);
}

void KernelSvr::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("KernelSvr::save before fit");
  writer.write_u64(num_inputs_);
  fitted_kernel_.save(writer);
  writer.write_double(bias_);
  writer.write_doubles(dual_coeffs_);
  writer.write_u64(support_.rows());
  for (std::size_t r = 0; r < support_.rows(); ++r) {
    const auto row = support_.row(r);
    writer.write_doubles(std::vector<double>(row.begin(), row.end()));
  }
  writer.write_doubles(input_scaler_.means());
  writer.write_doubles(input_scaler_.scales());
  writer.write_double(target_scaler_.mean);
  writer.write_double(target_scaler_.scale);
}

std::unique_ptr<KernelSvr> KernelSvr::load(util::BinaryReader& reader) {
  auto model = std::make_unique<KernelSvr>();
  model->num_inputs_ = reader.read_u64();
  model->fitted_kernel_ = KernelParams::load(reader);
  model->bias_ = reader.read_double();
  model->dual_coeffs_ = reader.read_doubles();
  const std::uint64_t sv_count = reader.read_u64();
  if (sv_count != model->dual_coeffs_.size()) {
    throw std::runtime_error("KernelSvr::load: inconsistent archive");
  }
  model->support_ = linalg::Matrix(sv_count, model->num_inputs_);
  for (std::uint64_t r = 0; r < sv_count; ++r) {
    const auto row = reader.read_doubles();
    if (row.size() != model->num_inputs_) {
      throw std::runtime_error("KernelSvr::load: bad support vector width");
    }
    std::copy(row.begin(), row.end(), model->support_.row(r).begin());
  }
  // Standardizer internals are rebuilt through a fit on a synthetic
  // two-row matrix encoding mean ± scale.
  const auto means = reader.read_doubles();
  const auto scales = reader.read_doubles();
  if (means.size() != model->num_inputs_ ||
      scales.size() != model->num_inputs_) {
    throw std::runtime_error("KernelSvr::load: bad scaler data");
  }
  linalg::Matrix synth(2, model->num_inputs_);
  for (std::size_t c = 0; c < model->num_inputs_; ++c) {
    synth(0, c) = means[c] - scales[c];
    synth(1, c) = means[c] + scales[c];
  }
  model->input_scaler_ = data::Standardizer::fit(synth);
  model->target_scaler_.mean = reader.read_double();
  model->target_scaler_.scale = reader.read_double();
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
