#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "parallel/thread_pool.hpp"

namespace f2pm::ml {

namespace {

// Guard for non-positive-curvature pair subproblems (LIBSVM's TAU).
constexpr double kTau = 1e-12;

// Below this many active variables the chunked gradient update costs more
// in dispatch than it saves in arithmetic.
constexpr std::size_t kParallelGradientThreshold = 4096;

}  // namespace

KernelSvr::KernelSvr(SvrOptions options) : options_(options) {
  if (options_.c <= 0.0) {
    throw std::invalid_argument("KernelSvr: C must be > 0");
  }
  if (options_.epsilon < 0.0) {
    throw std::invalid_argument("KernelSvr: epsilon must be >= 0");
  }
}

void KernelSvr::fit(const linalg::Matrix& x_raw, std::span<const double> y_raw) {
  check_fit_args(x_raw, y_raw);
  num_inputs_ = x_raw.cols();
  input_scaler_ = data::Standardizer::fit(x_raw);
  target_scaler_ = data::TargetScaler::fit(
      std::vector<double>(y_raw.begin(), y_raw.end()));
  const linalg::Matrix x = input_scaler_.transform(x_raw);
  const std::vector<double> y = target_scaler_.transform(
      std::vector<double>(y_raw.begin(), y_raw.end()));

  fitted_kernel_ = options_.kernel;
  fitted_kernel_.gamma = resolve_gamma(options_.kernel, x.cols());

  const std::size_t n = x.rows();
  const double c = options_.c;
  const double eps = options_.epsilon;

  // SMO over the 2n-variable dual: t < n are the α (sign +1) variables,
  // t >= n the α* (sign -1) variables; Q_tt' = s_t s_t' K_{t%n, t'%n}.
  // Kernel rows are fetched on demand through an LRU cache instead of a
  // precomputed dense matrix, so kernel storage stays within cache_bytes.
  KernelRowCache cache(fitted_kernel_, x, options_.cache_bytes);
  const std::span<const double> diag = cache.diagonal();

  const std::size_t size = 2 * n;
  std::vector<double> alpha(size, 0.0);
  std::vector<double> p(size);  // linear term of the dual gradient
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = eps - y[i];       // α block
    p[n + i] = eps + y[i];   // α* block
  }
  std::vector<double> grad(p);
  auto sign_of = [n](std::size_t t) { return t < n ? 1.0 : -1.0; };
  auto base_of = [n](std::size_t t) { return t < n ? t : t - n; };
  auto is_in_up = [&](std::size_t t) {
    return t < n ? alpha[t] < c : alpha[t] > 0.0;
  };
  auto is_in_low = [&](std::size_t t) {
    return t < n ? alpha[t] > 0.0 : alpha[t] < c;
  };

  // Shrinking state: the first active_size entries of `order` are the
  // working set; shrunk variables keep stale gradients until the mandatory
  // reconstruction.
  std::vector<std::size_t> order(size);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::size_t active_size = size;
  std::vector<char> active_flag(size, 1);
  bool unshrunk = false;
  const std::size_t shrink_interval = std::min<std::size_t>(size, 1000);
  std::size_t counter = shrink_interval;

  // Recomputes the stale gradients of shrunk variables from scratch:
  // grad[t] = p[t] + s_t Σ_b θ_b K(base(t), b) with θ_b = α_b - α*_b.
  auto reconstruct_gradient = [&] {
    if (active_size == size) return;
    std::vector<double> g(n, 0.0);
    for (std::size_t b = 0; b < n; ++b) {
      const double theta = alpha[b] - alpha[n + b];
      if (theta == 0.0) continue;
      linalg::axpy(theta, cache.row(b), g);
    }
    for (std::size_t t = 0; t < size; ++t) {
      if (!active_flag[t]) grad[t] = p[t] + sign_of(t) * g[base_of(t)];
    }
  };

  auto activate_all = [&] {
    active_size = size;
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::fill(active_flag.begin(), active_flag.end(), char{1});
  };

  // LIBSVM-style shrinking: a bound variable whose KKT desire points
  // further into its bound than every candidate on the other side can
  // never join a violating pair, so it leaves the working set.
  auto do_shrinking = [&] {
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    for (std::size_t pos = 0; pos < active_size; ++pos) {
      const std::size_t t = order[pos];
      const double score = -sign_of(t) * grad[t];
      if (is_in_up(t)) m_up = std::max(m_up, score);
      if (is_in_low(t)) m_low = std::min(m_low, score);
    }
    if (!unshrunk && m_up - m_low <= options_.tolerance * 10.0) {
      // Close to convergence: reconstruct once and re-shrink from the full
      // set, in case the heuristic dropped a variable prematurely.
      unshrunk = true;
      reconstruct_gradient();
      activate_all();
    }
    std::size_t pos = 0;
    while (pos < active_size) {
      const std::size_t t = order[pos];
      const bool in_up = is_in_up(t);
      const bool in_low = is_in_low(t);
      bool shrink = false;
      if (!(in_up && in_low)) {  // free variables are never shrunk
        const double score = -sign_of(t) * grad[t];
        if (in_up && score < m_low) shrink = true;
        if (in_low && score > m_up) shrink = true;
      }
      if (shrink) {
        --active_size;
        std::swap(order[pos], order[active_size]);
        active_flag[t] = 0;
      } else {
        ++pos;
      }
    }
  };

  // WSS-1: maximal violating pair over the working set. Returns false when
  // the working set satisfies the KKT conditions within tolerance.
  auto select_pair = [&](std::size_t& i, std::size_t& j) {
    double m_up = -std::numeric_limits<double>::infinity();
    double m_low = std::numeric_limits<double>::infinity();
    i = size;
    j = size;
    for (std::size_t pos = 0; pos < active_size; ++pos) {
      const std::size_t t = order[pos];
      const double score = -sign_of(t) * grad[t];
      if (is_in_up(t) && score > m_up) {
        m_up = score;
        i = t;
      }
      if (is_in_low(t) && score < m_low) {
        m_low = score;
        j = t;
      }
    }
    return !(i == size || j == size || m_up - m_low < options_.tolerance);
  };

  iterations_used_ = 0;
  while (iterations_used_ < options_.max_iterations) {
    if (options_.shrinking && --counter == 0) {
      do_shrinking();
      counter = shrink_interval;
    }

    std::size_t i = size;
    std::size_t j = size;
    if (!select_pair(i, j)) {
      if (active_size == size) break;
      // Converged on the shrunk set only: mandatory full-gradient
      // reconstruction, then re-check against every variable before
      // declaring convergence. Re-checking immediately (rather than on the
      // next iteration) matters: shrinking would otherwise drop the same
      // variables again and the loop would never see the full set.
      reconstruct_gradient();
      activate_all();
      if (!select_pair(i, j)) break;
      counter = 1;  // work remains: re-shrink on the next iteration
    }

    const double si = sign_of(i);
    const double sj = sign_of(j);
    const std::size_t bi = base_of(i);
    const std::size_t bj = base_of(j);
    const auto ki = cache.row(bi);
    const auto kj = cache.row(bj);
    const double kii = diag[bi];
    const double kjj = diag[bj];
    const double kij = ki[bj];
    const double old_ai = alpha[i];
    const double old_aj = alpha[j];

    if (si != sj) {
      double quad = kii + kjj + 2.0 * kij;  // Q_ii + Q_jj + 2 Q_ij (s_i≠s_j)
      if (quad <= 0.0) quad = kTau;
      const double delta = (-grad[i] - grad[j]) / quad;
      const double diff = alpha[i] - alpha[j];
      alpha[i] += delta;
      alpha[j] += delta;
      if (diff > 0.0) {
        if (alpha[j] < 0.0) {
          alpha[j] = 0.0;
          alpha[i] = diff;
        }
      } else {
        if (alpha[i] < 0.0) {
          alpha[i] = 0.0;
          alpha[j] = -diff;
        }
      }
      if (diff > 0.0) {
        if (alpha[i] > c) {
          alpha[i] = c;
          alpha[j] = c - diff;
        }
      } else {
        if (alpha[j] > c) {
          alpha[j] = c;
          alpha[i] = c + diff;
        }
      }
    } else {
      double quad = kii + kjj - 2.0 * kij;  // Q_ii + Q_jj - 2 Q_ij (s_i=s_j)
      if (quad <= 0.0) quad = kTau;
      const double delta = (grad[i] - grad[j]) / quad;
      const double sum = alpha[i] + alpha[j];
      alpha[i] -= delta;
      alpha[j] += delta;
      if (sum > c) {
        if (alpha[i] > c) {
          alpha[i] = c;
          alpha[j] = sum - c;
        }
      } else {
        if (alpha[j] < 0.0) {
          alpha[j] = 0.0;
          alpha[i] = sum;
        }
      }
      if (sum > c) {
        if (alpha[j] > c) {
          alpha[j] = c;
          alpha[i] = sum - c;
        }
      } else {
        if (alpha[i] < 0.0) {
          alpha[i] = 0.0;
          alpha[j] = sum;
        }
      }
    }

    const double delta_i = alpha[i] - old_ai;
    const double delta_j = alpha[j] - old_aj;
    if (delta_i == 0.0 && delta_j == 0.0) {
      ++iterations_used_;
      continue;
    }
    // G_t += Q_ti Δα_i + Q_tj Δα_j for every working-set variable t.
    // Elementwise, so chunking over the pool cannot change the result.
    auto update_block = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t pos = lo; pos < hi; ++pos) {
        const std::size_t t = order[pos];
        const std::size_t bt = base_of(t);
        grad[t] +=
            sign_of(t) * (si * ki[bt] * delta_i + sj * kj[bt] * delta_j);
      }
    };
    if (active_size < kParallelGradientThreshold) {
      update_block(0, active_size);
    } else {
      parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0,
                                     active_size, update_block);
    }
    ++iterations_used_;
  }

  // Collapse the doubled variables: θ_i = α_i - α*_i.
  std::vector<double> theta(n);
  for (std::size_t t = 0; t < n; ++t) theta[t] = alpha[t] - alpha[n + t];

  // Bias from the KKT conditions. g_i = Σ_j θ_j K_ij; a free α (resp. α*)
  // pins b = y - ε - g (resp. y + ε - g); otherwise bound constraints give
  // an interval and we take its midpoint.
  std::vector<double> g(n, 0.0);
  for (std::size_t jcol = 0; jcol < n; ++jcol) {
    if (theta[jcol] == 0.0) continue;
    linalg::axpy(theta[jcol], cache.row(jcol), g);
  }
  double free_sum = 0.0;
  std::size_t free_count = 0;
  double lower = -std::numeric_limits<double>::infinity();
  double upper = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < n; ++t) {
    const double up_b = y[t] - eps - g[t];    // b value implied by α_t
    const double dn_b = y[t] + eps - g[t];    // b value implied by α*_t
    if (alpha[t] > 0.0 && alpha[t] < c) {
      free_sum += up_b;
      ++free_count;
    }
    if (alpha[n + t] > 0.0 && alpha[n + t] < c) {
      free_sum += dn_b;
      ++free_count;
    }
    if (alpha[t] == 0.0) upper = std::min(upper, dn_b);
    if (alpha[t] >= c) lower = std::max(lower, up_b);
    if (alpha[n + t] == 0.0) lower = std::max(lower, up_b);
    if (alpha[n + t] >= c) upper = std::min(upper, dn_b);
  }
  if (free_count > 0) {
    bias_ = free_sum / static_cast<double>(free_count);
  } else if (std::isfinite(lower) && std::isfinite(upper)) {
    bias_ = (lower + upper) / 2.0;
  } else {
    bias_ = 0.0;
  }

  // Keep only the support vectors.
  std::vector<std::size_t> sv_rows;
  dual_coeffs_.clear();
  for (std::size_t t = 0; t < n; ++t) {
    if (theta[t] != 0.0) {
      sv_rows.push_back(t);
      dual_coeffs_.push_back(theta[t]);
    }
  }
  support_ = x.select_rows(sv_rows);
  cache_stats_ = cache.stats();
  fitted_ = true;
}

double KernelSvr::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  // Standardize the input row with the training scalers.
  std::vector<double> scaled(row.size());
  const auto& means = input_scaler_.means();
  const auto& scales = input_scaler_.scales();
  for (std::size_t c = 0; c < row.size(); ++c) {
    scaled[c] = (row[c] - means[c]) / scales[c];
  }
  double value = bias_;
  for (std::size_t s = 0; s < support_.rows(); ++s) {
    value += dual_coeffs_[s] *
             kernel_value(fitted_kernel_, support_.row(s), scaled);
  }
  return target_scaler_.inverse(value);
}

std::vector<double> KernelSvr::predict(const linalg::Matrix& x) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  const linalg::Matrix scaled = input_scaler_.transform(x);
  const linalg::Matrix k = kernel_matrix(fitted_kernel_, scaled, support_);
  std::vector<double> out = linalg::gemv(k, dual_coeffs_);
  for (double& value : out) value = target_scaler_.inverse(value + bias_);
  return out;
}

void KernelSvr::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("KernelSvr::save before fit");
  writer.write_u64(num_inputs_);
  fitted_kernel_.save(writer);
  writer.write_double(bias_);
  writer.write_doubles(dual_coeffs_);
  writer.write_u64(support_.rows());
  for (std::size_t r = 0; r < support_.rows(); ++r) {
    const auto row = support_.row(r);
    writer.write_doubles(std::vector<double>(row.begin(), row.end()));
  }
  writer.write_doubles(input_scaler_.means());
  writer.write_doubles(input_scaler_.scales());
  writer.write_double(target_scaler_.mean);
  writer.write_double(target_scaler_.scale);
}

std::unique_ptr<KernelSvr> KernelSvr::load(util::BinaryReader& reader) {
  auto model = std::make_unique<KernelSvr>();
  model->num_inputs_ = reader.read_u64();
  model->fitted_kernel_ = KernelParams::load(reader);
  model->bias_ = reader.read_double();
  model->dual_coeffs_ = reader.read_doubles();
  const std::uint64_t sv_count = reader.read_u64();
  if (sv_count != model->dual_coeffs_.size()) {
    throw std::runtime_error("KernelSvr::load: inconsistent archive");
  }
  model->support_ = linalg::Matrix(sv_count, model->num_inputs_);
  for (std::uint64_t r = 0; r < sv_count; ++r) {
    const auto row = reader.read_doubles();
    if (row.size() != model->num_inputs_) {
      throw std::runtime_error("KernelSvr::load: bad support vector width");
    }
    std::copy(row.begin(), row.end(), model->support_.row(r).begin());
  }
  const auto means = reader.read_doubles();
  const auto scales = reader.read_doubles();
  if (means.size() != model->num_inputs_ ||
      scales.size() != model->num_inputs_) {
    throw std::runtime_error("KernelSvr::load: bad scaler data");
  }
  model->input_scaler_ = data::Standardizer::from_moments(means, scales);
  model->target_scaler_.mean = reader.read_double();
  model->target_scaler_.scale = reader.read_double();
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
