#include "ml/ensemble.hpp"


#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>

#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {

BaggedTrees::BaggedTrees(BaggedTreesOptions options)
    : options_(options) {
  if (options_.num_trees == 0) {
    throw std::invalid_argument("BaggedTrees: num_trees must be > 0");
  }
  if (!(options_.sample_fraction > 0.0) || options_.sample_fraction > 1.0) {
    throw std::invalid_argument(
        "BaggedTrees: sample_fraction must be in (0, 1]");
  }
}

void BaggedTrees::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  trees_.clear();
  num_inputs_ = x.cols();
  const std::size_t n = x.rows();
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) *
                                  options_.sample_fraction));

  // Pre-draw every tree's bootstrap seed and grow/prune seed from the
  // master stream. Each fit task then owns an independent Rng, so the
  // fitted ensemble is bitwise identical no matter how many workers fit
  // it (and no matter the interleaving of their draws).
  util::Rng rng(options_.seed);
  std::vector<std::uint64_t> boot_seeds(options_.num_trees);
  std::vector<std::uint64_t> tree_seeds(options_.num_trees);
  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    boot_seeds[t] = rng();
    tree_seeds[t] = rng();
  }

  std::vector<std::unique_ptr<RepTree>> trees(options_.num_trees);
  const auto fit_one = [&](std::size_t t) {
    util::Rng boot_rng(boot_seeds[t]);
    std::vector<std::size_t> rows(sample_size);
    for (auto& row : rows) {
      row = static_cast<std::size_t>(
          boot_rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    const linalg::Matrix x_boot = x.select_rows(rows);
    std::vector<double> y_boot(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) y_boot[i] = y[rows[i]];

    RepTreeOptions tree_options = options_.tree;
    tree_options.seed = tree_seeds[t];  // independent shuffles per tree
    auto tree = std::make_unique<RepTree>(tree_options);
    tree->fit(x_boot, y_boot);
    trees[t] = std::move(tree);
  };

  if (options_.fit_workers == 1) {
    for (std::size_t t = 0; t < options_.num_trees; ++t) fit_one(t);
  } else if (options_.fit_workers == 0) {
    parallel::parallel_for(0, options_.num_trees, fit_one);
  } else {
    parallel::ThreadPool pool(options_.fit_workers);
    parallel::parallel_for(pool, 0, options_.num_trees, fit_one);
  }
  trees_ = std::move(trees);
}

double BaggedTrees::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree->predict_row(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> BaggedTrees::predict(const linalg::Matrix& x) const {
  if (trees_.empty()) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  // Accumulate the member trees' batched predictions in tree order — the
  // same summation order as predict_row, so the results agree bit-for-bit.
  std::vector<double> sums(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    const std::vector<double> preds = tree->predict(x);
    for (std::size_t r = 0; r < sums.size(); ++r) sums[r] += preds[r];
  }
  const auto count = static_cast<double>(trees_.size());
  for (auto& value : sums) value /= count;
  return sums;
}

BaggedTrees::Prediction BaggedTrees::predict_with_uncertainty(
    std::span<const double> row) const {
  check_predict_args(row);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& tree : trees_) {
    const double value = tree->predict_row(row);
    sum += value;
    sum_sq += value * value;
  }
  const auto n = static_cast<double>(trees_.size());
  Prediction prediction;
  prediction.mean = sum / n;
  const double variance = sum_sq / n - prediction.mean * prediction.mean;
  prediction.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return prediction;
}

void BaggedTrees::save(util::BinaryWriter& writer) const {
  if (trees_.empty()) throw std::logic_error("BaggedTrees::save before fit");
  writer.write_u64(num_inputs_);
  writer.write_u64(trees_.size());
  for (const auto& tree : trees_) tree->save(writer);
}

std::unique_ptr<BaggedTrees> BaggedTrees::load(util::BinaryReader& reader) {
  auto model = std::make_unique<BaggedTrees>();
  model->num_inputs_ = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  if (count == 0) throw std::runtime_error("BaggedTrees::load: empty ensemble");
  for (std::uint64_t t = 0; t < count; ++t) {
    model->trees_.push_back(RepTree::load(reader));
  }
  return model;
}

}  // namespace f2pm::ml
