#include "ml/ensemble.hpp"


#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace f2pm::ml {

BaggedTrees::BaggedTrees(BaggedTreesOptions options)
    : options_(options) {
  if (options_.num_trees == 0) {
    throw std::invalid_argument("BaggedTrees: num_trees must be > 0");
  }
  if (!(options_.sample_fraction > 0.0) || options_.sample_fraction > 1.0) {
    throw std::invalid_argument(
        "BaggedTrees: sample_fraction must be in (0, 1]");
  }
}

void BaggedTrees::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  trees_.clear();
  num_inputs_ = x.cols();
  util::Rng rng(options_.seed);
  const std::size_t n = x.rows();
  const auto sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(n) *
                                  options_.sample_fraction));
  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    // Bootstrap: sample rows with replacement.
    std::vector<std::size_t> rows(sample_size);
    for (auto& row : rows) {
      row = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    const linalg::Matrix x_boot = x.select_rows(rows);
    std::vector<double> y_boot(sample_size);
    for (std::size_t i = 0; i < sample_size; ++i) y_boot[i] = y[rows[i]];

    RepTreeOptions tree_options = options_.tree;
    tree_options.seed = rng();  // independent grow/prune shuffles per tree
    auto tree = std::make_unique<RepTree>(tree_options);
    tree->fit(x_boot, y_boot);
    trees_.push_back(std::move(tree));
  }
}

double BaggedTrees::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree->predict_row(row);
  return sum / static_cast<double>(trees_.size());
}

BaggedTrees::Prediction BaggedTrees::predict_with_uncertainty(
    std::span<const double> row) const {
  check_predict_args(row);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& tree : trees_) {
    const double value = tree->predict_row(row);
    sum += value;
    sum_sq += value * value;
  }
  const auto n = static_cast<double>(trees_.size());
  Prediction prediction;
  prediction.mean = sum / n;
  const double variance = sum_sq / n - prediction.mean * prediction.mean;
  prediction.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return prediction;
}

void BaggedTrees::save(util::BinaryWriter& writer) const {
  if (trees_.empty()) throw std::logic_error("BaggedTrees::save before fit");
  writer.write_u64(num_inputs_);
  writer.write_u64(trees_.size());
  for (const auto& tree : trees_) tree->save(writer);
}

std::unique_ptr<BaggedTrees> BaggedTrees::load(util::BinaryReader& reader) {
  auto model = std::make_unique<BaggedTrees>();
  model->num_inputs_ = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  if (count == 0) throw std::runtime_error("BaggedTrees::load: empty ensemble");
  for (std::uint64_t t = 0; t < count; ++t) {
    model->trees_.push_back(RepTree::load(reader));
  }
  return model;
}

}  // namespace f2pm::ml
