// ε-insensitive Support Vector Regression (paper §III-D "SVM"), trained
// with an SMO solver in the style of LIBSVM: the 2n-variable dual (one α
// and one α* per sample), maximal-violating-pair working-set selection
// (WSS-1), an LRU kernel-row cache instead of a precomputed kernel matrix,
// and optional shrinking of bound, KKT-satisfied variables.
//
// Inputs and targets are standardized internally — kernel methods need
// comparable feature scales — and predictions are mapped back to seconds.
// This is deliberately the heavyweight method of the suite: its training
// time dwarfs the linear/tree methods exactly as in the paper's Table III.
#pragma once

#include <cstdint>
#include <vector>

#include "data/standardizer.hpp"
#include "ml/kernel_cache.hpp"
#include "ml/kernels.hpp"
#include "ml/model.hpp"

namespace f2pm::ml {

/// SVR hyperparameters. The defaults mirror the WEKA SMOreg settings the
/// paper's evaluation would have used (C = 1, RBF gamma = 0.01) — see
/// DESIGN.md; crank C/gamma up for a stronger but slower fit.
struct SvrOptions {
  KernelParams kernel{.type = KernelType::kRbf, .gamma = 0.01};
  double c = 1.0;               ///< Box constraint (on standardized targets).
  double epsilon = 0.01;        ///< Insensitive-tube half width (standardized).
  double tolerance = 1e-3;      ///< KKT violation stopping threshold.
  std::size_t max_iterations = 2'000'000;  ///< SMO pair updates.
  /// Kernel-row cache budget in bytes (LIBSVM-style). The solver never
  /// materializes the dense n x n kernel matrix; at most
  /// max(2, cache_bytes / (8 n)) rows are resident at once.
  std::size_t cache_bytes = 100ull << 20;
  /// Periodically drop bound, KKT-satisfied variables from the working set
  /// (LIBSVM shrinking). The full gradient is always reconstructed before
  /// the final convergence check, so the stopping criterion is unchanged.
  bool shrinking = true;
};

/// ε-SVR with SMO training.
class KernelSvr final : public Regressor {
 public:
  explicit KernelSvr(SvrOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction via one cross-kernel matrix + gemv, replacing
  /// per-row per-SV kernel_value calls.
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "svm"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<KernelSvr> load(util::BinaryReader& reader);

  [[nodiscard]] const SvrOptions& options() const { return options_; }
  /// Number of support vectors (samples with non-zero dual coefficient).
  [[nodiscard]] std::size_t num_support_vectors() const {
    return support_.rows();
  }
  /// SMO pair updates performed by the last fit.
  [[nodiscard]] std::size_t iterations_used() const {
    return iterations_used_;
  }
  /// Kernel-row cache counters from the last fit (hit/miss/eviction and
  /// peak resident bytes — the memory bound the cache enforced).
  [[nodiscard]] const KernelCacheStats& cache_stats() const {
    return cache_stats_;
  }

 private:
  SvrOptions options_;
  KernelParams fitted_kernel_;          ///< Kernel with gamma resolved.
  linalg::Matrix support_;              ///< Standardized support vectors.
  std::vector<double> dual_coeffs_;     ///< θ_i = α_i - α*_i per SV.
  double bias_ = 0.0;
  data::Standardizer input_scaler_;
  data::TargetScaler target_scaler_;
  std::size_t num_inputs_ = 0;
  std::size_t iterations_used_ = 0;
  KernelCacheStats cache_stats_;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
