#include "ml/linear_regression.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"

namespace f2pm::ml {

void LinearRegression::fit(const linalg::Matrix& x,
                           std::span<const double> y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  // Augment with the intercept column.
  linalg::Matrix design(n, p + 1);
  for (std::size_t r = 0; r < n; ++r) {
    auto dst = design.row(r);
    const auto src = x.row(r);
    std::copy(src.begin(), src.end(), dst.begin());
    dst[p] = 1.0;
  }
  std::vector<double> beta;
  if (n >= p + 1) {
    try {
      beta = linalg::least_squares(design, y);
    } catch (const std::runtime_error&) {
      // Rank-deficient design (e.g. a constant or duplicated feature):
      // fall back to a ridge-stabilized normal-equation solve.
      beta.clear();
    }
  }
  if (beta.empty()) {
    linalg::Matrix gram = linalg::gram(design);
    const auto xty = linalg::gemv_transposed(design, y);
    beta = linalg::solve_spd(gram, xty, /*jitter=*/1e-8);
  }
  coefficients_.assign(beta.begin(), beta.begin() + p);
  intercept_ = beta[p];
  fitted_ = true;
}

double LinearRegression::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  return linalg::dot(row, coefficients_) + intercept_;
}

void LinearRegression::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("LinearRegression::save before fit");
  writer.write_doubles(coefficients_);
  writer.write_double(intercept_);
}

std::unique_ptr<LinearRegression> LinearRegression::load(
    util::BinaryReader& reader) {
  auto model = std::make_unique<LinearRegression>();
  model->coefficients_ = reader.read_doubles();
  model->intercept_ = reader.read_double();
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
