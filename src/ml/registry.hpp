// Model registry: name-based construction of every regressor in the suite
// (the paper's six methods plus the local extensions), parameterized via
// Config keys, plus the serialization dispatch used by load_model().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/model.hpp"
#include "util/config.hpp"
#include "util/serialization.hpp"

namespace f2pm::ml {

/// Names of the paper's six methods, in the paper's presentation order:
/// linear, m5p, reptree, lasso, svm, svm2.
std::vector<std::string> paper_model_names();

/// All registered model names (paper set + "ridge", "knn").
std::vector<std::string> all_model_names();

/// Constructs an unfitted model by name. Hyperparameters are read from
/// `params` under "<name>." prefixes, e.g. "lasso.lambda", "svm.c",
/// "reptree.max_depth", "knn.k". Throws std::invalid_argument for unknown
/// names.
std::unique_ptr<Regressor> make_model(const std::string& name,
                                      const util::Config& params);

/// Convenience overload with all-default hyperparameters.
std::unique_ptr<Regressor> make_model(const std::string& name);

/// Deserialization dispatch: reads the body written by `save(writer)` for
/// the model whose name() is `tag`. Called by load_model().
std::unique_ptr<Regressor> load_model_body(const std::string& tag,
                                           util::BinaryReader& reader);

}  // namespace f2pm::ml
