#include "ml/exhaustion_heuristic.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/aggregation.hpp"

namespace f2pm::ml {

namespace {

constexpr std::size_t level_col(data::FeatureId id) {
  return static_cast<std::size_t>(id);
}
constexpr std::size_t slope_col(data::FeatureId id) {
  return data::kFeatureCount + static_cast<std::size_t>(id);
}
constexpr std::size_t kIntergenCol = data::kInputCount - 2;

}  // namespace

ExhaustionHeuristic::ExhaustionHeuristic(ExhaustionHeuristicOptions options)
    : options_(options) {
  if (!(options_.min_rate_kb_per_s > 0.0)) {
    throw std::invalid_argument(
        "ExhaustionHeuristic: min_rate_kb_per_s must be > 0");
  }
}

std::size_t ExhaustionHeuristic::num_inputs() const {
  return data::kInputCount;
}

double ExhaustionHeuristic::raw_estimate(std::span<const double> row) const {
  // Consumable pool: free RAM + reclaimable cache/buffers + free swap.
  const double pool = row[level_col(data::FeatureId::kMemFree)] +
                      row[level_col(data::FeatureId::kMemCached)] +
                      row[level_col(data::FeatureId::kMemBuffers)] +
                      row[level_col(data::FeatureId::kSwapFree)];
  // Consumption rate: Eq. (1) slopes are KiB per sample; the
  // inter-generation time converts to KiB per second. Memory growth and
  // swap growth are the same leak seen before/after RAM exhaustion, so the
  // larger of the two is the live consumption signal.
  const double intergen = std::max(row[kIntergenCol], 1e-3);
  const double mem_rate =
      row[slope_col(data::FeatureId::kMemUsed)] / intergen;
  const double swap_rate =
      row[slope_col(data::FeatureId::kSwapUsed)] / intergen;
  const double rate = std::max({mem_rate, swap_rate,
                                options_.min_rate_kb_per_s});
  return std::min(pool / rate, options_.max_prediction_seconds);
}

void ExhaustionHeuristic::fit(const linalg::Matrix& x,
                              std::span<const double> y) {
  check_fit_args(x, y);
  if (x.cols() != data::kInputCount) {
    throw std::invalid_argument(
        "ExhaustionHeuristic: needs the full input layout (levels + slopes "
        "+ intergen)");
  }
  // Least-squares scale: min_a Σ (a·t_i - y_i)² -> a = Σ t·y / Σ t².
  double ty = 0.0;
  double tt = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double t = raw_estimate(x.row(r));
    ty += t * y[r];
    tt += t * t;
  }
  scale_ = tt > 0.0 ? ty / tt : 1.0;
  fitted_ = true;
}

double ExhaustionHeuristic::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  return std::max(scale_ * raw_estimate(row), 0.0);
}

void ExhaustionHeuristic::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("ExhaustionHeuristic::save before fit");
  writer.write_double(options_.min_rate_kb_per_s);
  writer.write_double(options_.max_prediction_seconds);
  writer.write_double(scale_);
}

std::unique_ptr<ExhaustionHeuristic> ExhaustionHeuristic::load(
    util::BinaryReader& reader) {
  ExhaustionHeuristicOptions options;
  options.min_rate_kb_per_s = reader.read_double();
  options.max_prediction_seconds = reader.read_double();
  auto model = std::make_unique<ExhaustionHeuristic>(options);
  model->scale_ = reader.read_double();
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
