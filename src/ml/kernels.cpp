#include "ml/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "parallel/thread_pool.hpp"
#include "util/string_util.hpp"

namespace f2pm::ml {

std::string KernelParams::to_string() const {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf(gamma=" + util::format_double(gamma, 6) + ")";
    case KernelType::kPolynomial:
      return "poly(degree=" + std::to_string(degree) +
             ",gamma=" + util::format_double(gamma, 6) +
             ",coef0=" + util::format_double(coef0, 6) + ")";
  }
  return "unknown";
}

void KernelParams::save(util::BinaryWriter& writer) const {
  writer.write_u64(static_cast<std::uint64_t>(type));
  writer.write_double(gamma);
  writer.write_double(coef0);
  writer.write_i64(degree);
}

KernelParams KernelParams::load(util::BinaryReader& reader) {
  KernelParams params;
  const std::uint64_t type = reader.read_u64();
  if (type > static_cast<std::uint64_t>(KernelType::kPolynomial)) {
    throw std::runtime_error("KernelParams::load: unknown kernel type");
  }
  params.type = static_cast<KernelType>(type);
  params.gamma = reader.read_double();
  params.coef0 = reader.read_double();
  params.degree = static_cast<int>(reader.read_i64());
  return params;
}

double resolve_gamma(const KernelParams& params, std::size_t num_features) {
  if (params.gamma > 0.0) return params.gamma;
  return num_features == 0 ? 1.0 : 1.0 / static_cast<double>(num_features);
}

double kernel_value(const KernelParams& params, std::span<const double> a,
                    std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("kernel_value: size mismatch");
  }
  switch (params.type) {
    case KernelType::kLinear:
      return linalg::dot(a, b);
    case KernelType::kRbf: {
      double dist_sq = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        dist_sq += d * d;
      }
      return std::exp(-params.gamma * dist_sq);
    }
    case KernelType::kPolynomial:
      return std::pow(params.gamma * linalg::dot(a, b) + params.coef0,
                      params.degree);
  }
  throw std::logic_error("kernel_value: unreachable");
}

linalg::Matrix kernel_matrix(const KernelParams& params,
                             const linalg::Matrix& x) {
  const std::size_t n = x.rows();
  linalg::Matrix k(n, n);
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, n,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = 0; j <= i; ++j) {
            k(i, j) = kernel_value(params, x.row(i), x.row(j));
          }
        }
      });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) k(i, j) = k(j, i);
  }
  return k;
}

std::vector<double> row_squared_norms(const linalg::Matrix& x) {
  std::vector<double> norms(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    norms[i] = linalg::dot(row, row);
  }
  return norms;
}

void kernel_row(const KernelParams& params, const linalg::Matrix& x,
                std::size_t i, std::span<const double> row_norms,
                std::span<double> out) {
  const std::size_t n = x.rows();
  if (i >= n) {
    throw std::invalid_argument("kernel_row: row index out of range");
  }
  if (out.size() != n) {
    throw std::invalid_argument("kernel_row: output span size mismatch");
  }
  if (params.type == KernelType::kRbf && row_norms.size() != n) {
    throw std::invalid_argument("kernel_row: row_norms size mismatch");
  }
  const auto xi = x.row(i);
  auto block = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) out[j] = linalg::dot(xi, x.row(j));
    switch (params.type) {
      case KernelType::kLinear:
        break;
      case KernelType::kRbf: {
        // Squared-distance pass (vectorizable), then one exp pass. The
        // max(0, .) guards against tiny negative round-off; the diagonal
        // cancels exactly, so K(i, i) stays 1.
        const double ni = row_norms[i];
        for (std::size_t j = lo; j < hi; ++j) {
          out[j] = -params.gamma *
                   std::max(0.0, ni + row_norms[j] - 2.0 * out[j]);
        }
        for (std::size_t j = lo; j < hi; ++j) out[j] = std::exp(out[j]);
        break;
      }
      case KernelType::kPolynomial:
        for (std::size_t j = lo; j < hi; ++j) {
          out[j] = std::pow(params.gamma * out[j] + params.coef0,
                            params.degree);
        }
        break;
    }
  };
  // Below this many multiply-adds the dispatch costs more than the row.
  constexpr std::size_t kParallelWork = 1u << 14;
  if (n * x.cols() < kParallelWork) {
    block(0, n);
  } else {
    parallel::parallel_for_chunked(parallel::ThreadPool::global(), 0, n,
                                   block);
  }
}

linalg::Matrix kernel_matrix(const KernelParams& params,
                             const linalg::Matrix& a,
                             const linalg::Matrix& b) {
  linalg::Matrix k(a.rows(), b.rows());
  parallel::parallel_for_chunked(
      parallel::ThreadPool::global(), 0, a.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = 0; j < b.rows(); ++j) {
            k(i, j) = kernel_value(params, a.row(i), b.row(j));
          }
        }
      });
  return k;
}

}  // namespace f2pm::ml
