// Two-stage prescoring cascade (ROADMAP "cheap screen, expensive refine").
//
// At production scale almost every monitored session is healthy almost all
// the time, so scoring every closed window with the full model (SVR, M5P,
// bagged trees) wastes nearly all serve CPU — high-fidelity RTTF is only
// needed in the near-failure region (paper Fig. 5). The cascade screens
// every row with a deliberately tiny model (LinearRegression on a
// Lasso-selected subset, or a depth-capped REP-Tree) and promotes only
// suspicious rows to the full model, the same shape as epa-ng's
// `prescoring`/`prescoring_threshold` heuristic and Mantis's cost-aware
// feature selection.
//
// Promotion policy: a row is promoted iff its screened RTTF falls strictly
// below `horizon_seconds + margin`, where the margin is a screen-vs-full
// disagreement band calibrated during fit() — the band_quantile quantile
// of (screen - full) over the training rows the full model itself places
// below the horizon. With band_quantile = 1 every training row the full
// model considers near-failure is promoted, so promoted predictions are
// bit-identical to running the full model alone.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/model.hpp"

namespace f2pm::ml {

/// Cascade parameters (registry prefix "cascade.").
struct CascadeOptions {
  /// Near-failure horizon in seconds: screened RTTF below horizon+margin
  /// promotes the row to the full model. This should be at least the
  /// rejuvenation lead time the deployment acts on.
  double horizon_seconds = 600.0;
  /// Quantile (in [0, 1]) of the screen-over-full disagreement, measured
  /// during fit() on training rows the full model places below the
  /// horizon, used as the promotion margin. 1 covers the whole observed
  /// band; 0 degenerates to the bare horizon rule.
  double band_quantile = 1.0;
  /// When > 0 and screen_columns is empty, fit() runs a Lasso at this λ
  /// over the training matrix and screens on the selected columns only.
  /// An empty selection falls back to screening on every column.
  double screen_lasso_lambda = 0.0;
  /// Explicit screen-stage column subset (indices into the model input
  /// row). Empty = screen on the full row (or the Lasso selection above).
  std::vector<std::size_t> screen_columns;
};

/// Screen-then-refine regressor pair behind the ordinary Regressor
/// interface, so cascades flow through the registry, model archives, the
/// ModelStore hot-swap path and the continuous trainer unchanged.
class CascadeRegressor final : public Regressor {
 public:
  /// One scored row plus the routing decision that produced it.
  struct TracedPrediction {
    double rttf = 0.0;         ///< Final prediction (full model if promoted).
    double screen_rttf = 0.0;  ///< What the screen stage predicted.
    bool promoted = false;     ///< True when the full model was consulted.
  };

  /// Takes ownership of both stages; neither may be null. Both are
  /// (re)fitted by fit() from the same corpus — the screen on its column
  /// subset, the full model on the complete row.
  CascadeRegressor(std::unique_ptr<Regressor> screen,
                   std::unique_ptr<Regressor> full,
                   CascadeOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction: one batched screen pass over every row, then one
  /// batched full-model pass over only the promoted subset, scattered back.
  /// Bit-identical to predict_row row by row.
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "cascade"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override {
    return num_inputs_;
  }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<CascadeRegressor> load(util::BinaryReader& reader);

  /// predict_row plus the routing decision (the serve tier surfaces
  /// `promoted` per prediction).
  [[nodiscard]] TracedPrediction predict_row_traced(
      std::span<const double> row) const;
  /// Batched predict that also reports which rows were promoted
  /// (promoted_out, when non-null, is resized to x.rows()).
  [[nodiscard]] std::vector<double> predict_traced(
      const linalg::Matrix& x, std::vector<std::uint8_t>* promoted_out) const;

  [[nodiscard]] const Regressor& screen() const { return *screen_; }
  [[nodiscard]] const Regressor& full() const { return *full_; }
  [[nodiscard]] const CascadeOptions& options() const { return options_; }
  /// Columns the screen stage actually uses (resolved at fit time; empty =
  /// full row).
  [[nodiscard]] const std::vector<std::size_t>& screen_columns() const {
    return screen_columns_;
  }
  /// Calibrated screen-vs-full disagreement band (>= 0).
  [[nodiscard]] double margin() const { return margin_; }
  /// Screened RTTF strictly below this promotes the row.
  [[nodiscard]] double promote_threshold() const {
    return options_.horizon_seconds + margin_;
  }

 private:
  CascadeRegressor() = default;  // load()

  [[nodiscard]] std::span<const double> screen_row(
      std::span<const double> row) const;

  CascadeOptions options_;
  std::unique_ptr<Regressor> screen_;
  std::unique_ptr<Regressor> full_;
  std::vector<std::size_t> screen_columns_;
  double margin_ = 0.0;
  std::size_t num_inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
