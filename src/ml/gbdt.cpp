#include "ml/gbdt.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {

namespace {

/// Process-wide cache of FeatureBinning instances keyed on matrix content.
/// Binning depends only on (matrix bytes, bins, mode), and k-fold CV
/// rebuilds byte-identical fold matrices for every grid point, so a grid
/// search sweeping shrinkage/rounds bins each fold once instead of once
/// per grid point. Small LRU; concurrent fits of a not-yet-cached key may
/// both compute (correct either way, both count as computed).
class BinningCache {
 public:
  static BinningCache& global() {
    static BinningCache cache;
    return cache;
  }

  std::shared_ptr<const FeatureBinning> get(std::uint64_t key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        Entry hit = entries_[i];
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        entries_.insert(entries_.begin(), hit);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return hit.binning;
      }
    }
    return nullptr;
  }

  void put(std::uint64_t key, std::shared_ptr<const FeatureBinning> binning) {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.insert(entries_.begin(), {key, std::move(binning)});
    if (entries_.size() > kCapacity) entries_.resize(kCapacity);
  }

  void count_computed() { computed_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] BinningCacheStats stats() const {
    return {computed_.load(std::memory_order_relaxed),
            hits_.load(std::memory_order_relaxed)};
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const FeatureBinning> binning;
  };
  static constexpr std::size_t kCapacity = 32;

  std::mutex mutex_;
  std::vector<Entry> entries_;  ///< Most recently used first.
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> hits_{0};
};

/// FNV-1a over the matrix bytes plus the binning configuration.
std::uint64_t binning_fingerprint(const linalg::Matrix& x, std::size_t bins,
                                  BinningMode mode) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x00000100000001b3ull;
  };
  mix(x.rows());
  mix(x.cols());
  mix(bins);
  mix(static_cast<std::uint64_t>(mode));
  for (const double v : x.data()) mix(std::bit_cast<std::uint64_t>(v));
  return h;
}

/// Binning over all matrix rows — a superset of any per-round row sample,
/// which compute_feature_binning documents as exact to reuse.
std::shared_ptr<const FeatureBinning> shared_binning(const linalg::Matrix& x,
                                                     std::size_t bins,
                                                     BinningMode mode,
                                                     bool reuse) {
  auto& cache = BinningCache::global();
  std::uint64_t key = 0;
  if (reuse) {
    key = binning_fingerprint(x, bins, mode);
    if (auto cached = cache.get(key)) return cached;
  }
  std::vector<std::size_t> all_rows(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) all_rows[r] = r;
  auto binning = std::make_shared<const FeatureBinning>(
      compute_feature_binning(x, all_rows, bins, mode));
  cache.count_computed();
  if (reuse) cache.put(key, binning);
  return binning;
}

/// Sampled index mask -> ascending selection: the set comes from the
/// permutation, the order never does, so every downstream accumulation
/// streams rows in canonical ascending order (worker- and draw-order
/// invariant, same idiom as RepTree's prune split).
std::vector<std::uint8_t> pick_mask(util::Rng& rng, std::size_t total,
                                    std::size_t take) {
  const auto perm = rng.permutation(total);
  std::vector<std::uint8_t> mask(total, 0);
  for (std::size_t i = 0; i < take; ++i) mask[perm[i]] = 1;
  return mask;
}

std::size_t sample_count(double fraction, std::size_t total) {
  const auto k = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(total)));
  return std::clamp<std::size_t>(k, 1, total);
}

}  // namespace

GbdtRegressor::GbdtRegressor(GbdtOptions options) : options_(options) {
  if (options_.n_rounds == 0) {
    throw std::invalid_argument("GbdtRegressor: n_rounds must be > 0");
  }
  if (!(options_.learning_rate > 0.0)) {
    throw std::invalid_argument("GbdtRegressor: learning_rate must be > 0");
  }
  if (options_.min_instances_per_leaf == 0) {
    throw std::invalid_argument(
        "GbdtRegressor: min_instances_per_leaf must be > 0");
  }
  if (!(options_.row_subsample > 0.0) || options_.row_subsample > 1.0 ||
      !(options_.feature_subsample > 0.0) ||
      options_.feature_subsample > 1.0) {
    throw std::invalid_argument(
        "GbdtRegressor: subsample fractions must be in (0, 1]");
  }
  if (options_.histogram_bins < 2) {
    throw std::invalid_argument("GbdtRegressor: histogram_bins must be >= 2");
  }
  if (options_.early_stopping_rounds > 0 &&
      (!(options_.validation_fraction > 0.0) ||
       options_.validation_fraction >= 1.0)) {
    throw std::invalid_argument(
        "GbdtRegressor: validation_fraction must be in (0, 1)");
  }
}

GbdtRegressor::Tree GbdtRegressor::grow_tree(TreeGrowthEngine& engine) const {
  // Leaf-wise (best-first) growth: a max-heap of splittable leaves ordered
  // by SSE gain; each step converts the best leaf into an internal node.
  // Per-node best splits are independent of expansion order (each node's
  // segment and histogram are fixed at creation), so with no leaf cap this
  // grows exactly the depth-first tree — the REPTree equivalence relies on
  // that. Ties break on creation order, keeping the fit fully
  // deterministic.
  Tree tree;
  struct Cand {
    double score = 0.0;
    std::uint64_t seq = 0;
    std::size_t node = 0;
    TreeGrowthEngine::NodeId enode = 0;
    BestSplit split;
    std::size_t depth = 0;
  };
  struct CandLess {
    bool operator()(const Cand& a, const Cand& b) const {
      if (a.score != b.score) return a.score < b.score;
      return a.seq > b.seq;  // earlier-created leaf wins ties
    }
  };
  std::priority_queue<Cand, std::vector<Cand>, CandLess> frontier;
  std::uint64_t seq = 0;
  const double lr = options_.learning_rate;

  const auto add_node = [&](TreeGrowthEngine::NodeId enode) {
    const Moments moments = engine.moments(enode);
    Node node;
    // Leaf values carry the shrinkage already applied, so prediction is a
    // plain sum and serialization needs no learning-rate replay.
    node.value = lr * moments.mean();
    const std::size_t id = tree.nodes.size();
    tree.nodes.push_back(node);
    return std::pair<std::size_t, Moments>{id, moments};
  };
  const auto consider = [&](std::size_t id, TreeGrowthEngine::NodeId enode,
                            const Moments& moments, std::size_t depth) {
    if (options_.max_depth != 0 && depth >= options_.max_depth) {
      engine.release(enode);
      return;
    }
    const BestSplit split =
        engine.find_best_split(enode, options_.min_instances_per_leaf,
                               SplitCriterion::kVarianceReduction, &moments);
    if (!split.found) {
      engine.release(enode);
      return;
    }
    frontier.push({split.score, seq++, id, enode, split, depth});
  };

  const auto [root_id, root_moments] = add_node(engine.root());
  std::size_t leaves = 1;
  consider(root_id, engine.root(), root_moments, 0);
  while (!frontier.empty() &&
         (options_.max_leaves == 0 || leaves < options_.max_leaves)) {
    const Cand cand = frontier.top();
    frontier.pop();
    const auto [left_e, right_e] = engine.apply_split(cand.enode, cand.split);
    const auto [left_id, left_moments] = add_node(left_e);
    const auto [right_id, right_moments] = add_node(right_e);
    tree.nodes[cand.node].feature = cand.split.feature;
    tree.nodes[cand.node].threshold = cand.split.threshold;
    tree.nodes[cand.node].left = left_id;
    tree.nodes[cand.node].right = right_id;
    ++leaves;
    consider(left_id, left_e, left_moments, cand.depth + 1);
    consider(right_id, right_e, right_moments, cand.depth + 1);
  }
  while (!frontier.empty()) {
    engine.release(frontier.top().enode);
    frontier.pop();
  }
  return tree;
}

double GbdtRegressor::tree_value(const Tree& tree, const double* row) {
  const Node* nodes = tree.nodes.data();
  std::size_t id = 0;
  while (nodes[id].left != kNoNode) {
    const Node& node = nodes[id];
    id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes[id].value;
}

void GbdtRegressor::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  static obs::Histogram& fit_hist = obs::Registry::global().histogram(
      "f2pm_ml_tree_fit_seconds",
      "Tree-learner fit wall-clock time (growth engine).",
      obs::Histogram::default_latency_bounds(), "model=\"gbdt\"");
  const obs::ScopedTimer fit_timer(fit_hist);
  trees_.clear();
  loss_history_.clear();
  fitted_ = false;
  num_inputs_ = x.cols();
  const std::size_t n = x.rows();

  // Every random decision is drawn from the master stream up front — the
  // holdout split first, then one (row, feature) seed pair per round — so
  // nothing about thread scheduling or early stopping can perturb a draw.
  util::Rng master(options_.seed);
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> val_rows;
  const bool use_holdout = options_.early_stopping_rounds > 0 && n >= 4;
  if (use_holdout) {
    const auto val_count = std::clamp<std::size_t>(
        static_cast<std::size_t>(static_cast<double>(n) *
                                 options_.validation_fraction),
        1, n - 1);
    const std::vector<std::uint8_t> in_val = pick_mask(master, n, val_count);
    train_rows.reserve(n - val_count);
    val_rows.reserve(val_count);
    for (std::size_t r = 0; r < n; ++r) {
      (in_val[r] != 0 ? val_rows : train_rows).push_back(r);
    }
  } else {
    train_rows.resize(n);
    for (std::size_t r = 0; r < n; ++r) train_rows[r] = r;
  }
  struct RoundSeeds {
    std::uint64_t rows = 0;
    std::uint64_t features = 0;
  };
  std::vector<RoundSeeds> seeds(options_.n_rounds);
  for (RoundSeeds& s : seeds) {
    s.rows = master();
    s.features = master();
  }

  const std::shared_ptr<const FeatureBinning> binning = shared_binning(
      x, options_.histogram_bins, options_.bin_mode, options_.reuse_bins);

  if (options_.base_score == GbdtOptions::BaseScore::kZero) {
    base_score_ = 0.0;
  } else {
    Moments m;
    for (const std::size_t r : train_rows) m.add(y[r]);
    base_score_ = m.mean();
  }
  std::vector<double> pred(n, base_score_);
  std::vector<double> resid(n);
  for (std::size_t r = 0; r < n; ++r) resid[r] = y[r] - pred[r];

  std::optional<parallel::ThreadPool> local_pool;
  if (options_.fit_workers > 1) local_pool.emplace(options_.fit_workers);
  parallel::ThreadPool* pool =
      options_.fit_workers == 0 ? &parallel::ThreadPool::global()
      : options_.fit_workers > 1 ? &*local_pool
                                 : nullptr;

  double best_val = std::numeric_limits<double>::infinity();
  std::size_t best_round = 0;
  for (std::size_t t = 0; t < options_.n_rounds; ++t) {
    std::vector<std::size_t> rows_t;
    if (options_.row_subsample >= 1.0) {
      rows_t = train_rows;
    } else {
      util::Rng row_rng(seeds[t].rows);
      const std::size_t take =
          sample_count(options_.row_subsample, train_rows.size());
      const std::vector<std::uint8_t> mask =
          pick_mask(row_rng, train_rows.size(), take);
      rows_t.reserve(take);
      for (std::size_t i = 0; i < train_rows.size(); ++i) {
        if (mask[i] != 0) rows_t.push_back(train_rows[i]);
      }
    }

    TreeGrowthEngine::Config engine_config;
    engine_config.mode = SplitMode::kHistogram;
    engine_config.histogram_bins = options_.histogram_bins;
    engine_config.binning = binning;
    engine_config.min_split_size = 2 * options_.min_instances_per_leaf;
    if (options_.feature_subsample < 1.0) {
      util::Rng feature_rng(seeds[t].features);
      const std::size_t take =
          sample_count(options_.feature_subsample, num_inputs_);
      engine_config.feature_active = pick_mask(feature_rng, num_inputs_, take);
    }
    TreeGrowthEngine engine(x, resid, std::move(rows_t), engine_config);
    trees_.push_back(grow_tree(engine));
    const Tree& tree = trees_.back();

    // Update predictions/residuals for every row (holdout included) —
    // per-row independent writes, so fanning the blocks out is bitwise
    // identical at any worker count.
    constexpr std::size_t kBlock = 1024;
    const std::size_t num_blocks = (n + kBlock - 1) / kBlock;
    const auto update_block = [&](std::size_t b) {
      const std::size_t begin = b * kBlock;
      const std::size_t end = std::min(n, begin + kBlock);
      for (std::size_t r = begin; r < end; ++r) {
        pred[r] += tree_value(tree, x.row(r).data());
        resid[r] = y[r] - pred[r];
      }
    };
    if (pool != nullptr && num_blocks > 1) {
      parallel::parallel_for(*pool, 0, num_blocks, update_block);
    } else {
      for (std::size_t b = 0; b < num_blocks; ++b) update_block(b);
    }

    double train_sse = 0.0;
    for (const std::size_t r : train_rows) train_sse += resid[r] * resid[r];
    loss_history_.push_back(train_sse /
                            static_cast<double>(train_rows.size()));

    if (use_holdout) {
      double val_sse = 0.0;
      for (const std::size_t r : val_rows) val_sse += resid[r] * resid[r];
      const double val_mse = val_sse / static_cast<double>(val_rows.size());
      if (val_mse < best_val) {
        best_val = val_mse;
        best_round = t;
      } else if (t - best_round >= options_.early_stopping_rounds) {
        break;
      }
    }
  }
  if (use_holdout && best_round + 1 < trees_.size()) {
    trees_.resize(best_round + 1);
  }
  fitted_ = true;
}

double GbdtRegressor::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  double acc = base_score_;
  for (const Tree& tree : trees_) acc += tree_value(tree, row.data());
  return acc;
}

std::vector<double> GbdtRegressor::predict(const linalg::Matrix& x) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  static obs::Histogram& predict_hist = obs::Registry::global().histogram(
      "f2pm_ml_batched_predict_seconds",
      "Batched model prediction wall-clock time.",
      obs::Histogram::default_latency_bounds(), "model=\"gbdt\"");
  const obs::ScopedTimer predict_timer(predict_hist);
  // Tree-major within a row block: each tree's nodes stay hot across the
  // block, while every row still accumulates base + trees in boosting
  // order — bit-identical to predict_row.
  constexpr std::size_t kBlock = 256;
  std::vector<double> out(x.rows(), base_score_);
  for (std::size_t begin = 0; begin < x.rows(); begin += kBlock) {
    const std::size_t end = std::min(x.rows(), begin + kBlock);
    for (const Tree& tree : trees_) {
      for (std::size_t r = begin; r < end; ++r) {
        out[r] += tree_value(tree, x.row(r).data());
      }
    }
  }
  return out;
}

void GbdtRegressor::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("GbdtRegressor::save before fit");
  writer.write_u64(num_inputs_);
  writer.write_double(base_score_);
  writer.write_u64(trees_.size());
  for (const Tree& tree : trees_) {
    std::vector<std::uint64_t> features;
    std::vector<double> thresholds;
    std::vector<double> values;
    std::vector<std::uint64_t> lefts;
    std::vector<std::uint64_t> rights;
    features.reserve(tree.nodes.size());
    for (const Node& node : tree.nodes) {
      features.push_back(node.feature);
      thresholds.push_back(node.threshold);
      values.push_back(node.value);
      lefts.push_back(node.left);
      rights.push_back(node.right);
    }
    writer.write_u64s(features);
    writer.write_doubles(thresholds);
    writer.write_doubles(values);
    writer.write_u64s(lefts);
    writer.write_u64s(rights);
  }
}

std::unique_ptr<GbdtRegressor> GbdtRegressor::load(util::BinaryReader& reader) {
  auto model = std::make_unique<GbdtRegressor>();
  model->num_inputs_ = reader.read_u64();
  model->base_score_ = reader.read_double();
  const std::uint64_t num_trees = reader.read_u64();
  model->trees_.resize(num_trees);
  for (Tree& tree : model->trees_) {
    const auto features = reader.read_u64s();
    const auto thresholds = reader.read_doubles();
    const auto values = reader.read_doubles();
    const auto lefts = reader.read_u64s();
    const auto rights = reader.read_u64s();
    const std::size_t count = features.size();
    if (thresholds.size() != count || values.size() != count ||
        lefts.size() != count || rights.size() != count || count == 0) {
      throw std::runtime_error("GbdtRegressor::load: inconsistent archive");
    }
    tree.nodes.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      Node& node = tree.nodes[i];
      node.feature = features[i];
      node.threshold = thresholds[i];
      node.value = values[i];
      node.left = lefts[i];
      node.right = rights[i];
      const bool left_leaf = node.left == kNoNode;
      const bool right_leaf = node.right == kNoNode;
      if (left_leaf != right_leaf ||
          (!left_leaf && (node.left >= count || node.right >= count))) {
        throw std::runtime_error("GbdtRegressor::load: corrupt tree links");
      }
    }
  }
  model->fitted_ = true;
  return model;
}

BinningCacheStats GbdtRegressor::binning_cache_stats() {
  return BinningCache::global().stats();
}

}  // namespace f2pm::ml
