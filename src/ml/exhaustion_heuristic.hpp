// The non-ML baseline every practitioner tries first: remaining time to
// failure = remaining consumable memory / current consumption rate.
//
// It reads the standard 30-column input layout (levels + Eq. 1 slopes +
// inter-generation metrics): the consumable pool is free + reclaimable
// cache/buffers + free swap, the rate comes from the mem/swap slopes
// converted from per-sample to per-second via the inter-generation time.
// fit() calibrates a single multiplicative constant by least squares on
// the training data (the raw estimate is systematically biased because
// the leak rate is not constant over a run).
//
// Its place in the study: bench/baseline_comparison shows what the ML
// models buy over this heuristic.
#pragma once

#include "ml/model.hpp"

namespace f2pm::ml {

/// Heuristic knobs.
struct ExhaustionHeuristicOptions {
  /// Floor on the per-second consumption rate (KiB/s) to avoid division
  /// blow-ups when the system is momentarily idle.
  double min_rate_kb_per_s = 1.0;
  /// Predictions are clamped to this ceiling (seconds).
  double max_prediction_seconds = 1e6;
};

/// Calibrated time-to-exhaustion estimator over the standard input layout.
class ExhaustionHeuristic final : public Regressor {
 public:
  explicit ExhaustionHeuristic(ExhaustionHeuristicOptions options = {});

  /// Calibrates the scale factor; x must be the full 30-column layout.
  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "heuristic"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override;
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<ExhaustionHeuristic> load(util::BinaryReader& reader);

  /// The uncalibrated time-to-exhaustion estimate (seconds) for one row.
  [[nodiscard]] double raw_estimate(std::span<const double> row) const;

  [[nodiscard]] double scale() const { return scale_; }

 private:
  ExhaustionHeuristicOptions options_;
  double scale_ = 1.0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
