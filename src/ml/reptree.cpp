#include "ml/reptree.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace f2pm::ml {

namespace {

/// Stable in-place partition of rows[begin, end) on x(r, feature) <=
/// threshold; returns the boundary. Produces the same element order as
/// partition_rows into two fresh vectors, without the allocations.
std::size_t split_range(const linalg::Matrix& x,
                        std::vector<std::size_t>& rows, std::size_t begin,
                        std::size_t end, std::size_t feature, double threshold,
                        std::vector<std::size_t>& scratch) {
  std::size_t out = begin;
  std::size_t spill = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t r = rows[i];
    // Branchless select: the comparison outcome is effectively random, so
    // a branch would mispredict on every other row.
    const bool left = x(r, feature) <= threshold;
    std::size_t* dst = left ? rows.data() + out : scratch.data() + spill;
    *dst = r;
    out += left ? 1 : 0;
    spill += left ? 0 : 1;
  }
  std::copy(scratch.begin(),
            scratch.begin() + static_cast<std::ptrdiff_t>(spill),
            rows.begin() + static_cast<std::ptrdiff_t>(out));
  return out;
}

}  // namespace

RepTree::RepTree(RepTreeOptions options) : options_(options) {
  if (options_.min_instances_per_leaf == 0) {
    throw std::invalid_argument("RepTree: min_instances_per_leaf must be > 0");
  }
  if (options_.num_folds < 2) {
    throw std::invalid_argument("RepTree: num_folds must be >= 2");
  }
}

std::size_t RepTree::build(TreeGrowthEngine& engine, double root_variance) {
  // Explicit work stack: right child pushed first so the left subtree is
  // finished before the right one starts, reproducing the recursive
  // preorder node numbering exactly — without call-stack depth limits.
  struct Task {
    TreeGrowthEngine::NodeId enode;
    std::size_t depth;
    std::size_t parent;  ///< Node id whose child link to patch, or kNoNode.
    bool is_left;
  };
  std::vector<Task> stack{{engine.root(), 0, kNoNode, false}};
  std::size_t root_id = kNoNode;
  while (!stack.empty()) {
    const Task task = stack.back();
    stack.pop_back();
    const Moments moments = engine.moments(task.enode);
    Node node;
    node.value = moments.mean();
    node.grow_count = static_cast<double>(moments.count);
    const std::size_t node_id = nodes_.size();
    nodes_.push_back(node);
    if (task.parent == kNoNode) {
      root_id = node_id;
    } else if (task.is_left) {
      nodes_[task.parent].left = node_id;
    } else {
      nodes_[task.parent].right = node_id;
    }

    const bool depth_ok =
        options_.max_depth == 0 || task.depth < options_.max_depth;
    const double variance =
        moments.count == 0
            ? 0.0
            : moments.sse() / static_cast<double>(moments.count);
    const bool variance_ok =
        variance > options_.min_variance_proportion * root_variance;
    BestSplit split;
    if (depth_ok && variance_ok) {
      split = engine.find_best_split(task.enode,
                                     options_.min_instances_per_leaf,
                                     SplitCriterion::kVarianceReduction,
                                     &moments);
    }
    if (!split.found) {
      engine.release(task.enode);
      continue;
    }
    const auto [left, right] = engine.apply_split(task.enode, split);
    nodes_[node_id].feature = split.feature;
    nodes_[node_id].threshold = split.threshold;
    stack.push_back({right, task.depth + 1, node_id, false});
    stack.push_back({left, task.depth + 1, node_id, true});
  }
  return root_id;
}

double RepTree::prune_subtree(std::size_t root_id, const linalg::Matrix& x,
                              std::span<const double> y,
                              const std::vector<std::size_t>& prune_rows) {
  // Post-order explicit-stack traversal (deep unpruned trees would
  // otherwise overflow the call stack). The prune rows live in one shared
  // workspace; each frame owns a [begin, end) range of it, stably
  // partitioned in place when the frame expands — descendants only
  // reorder within their own subrange, and a frame never re-reads its
  // range after expanding, so every accumulation sees the same sequence
  // the per-node-vectors version did.
  struct Frame {
    std::size_t node;
    std::size_t begin;
    std::size_t end;
    std::size_t mid = 0;
    double leaf_sse = 0.0;
    double child_sse = 0.0;
    int stage = 0;  ///< 0 = unexpanded, 1 = left pending, 2 = right pending.
  };
  std::vector<std::size_t> work(prune_rows);
  std::vector<std::size_t> scratch(work.size());
  std::vector<Frame> stack;
  stack.push_back({root_id, 0, work.size()});
  double returned = 0.0;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    Node& node = nodes_[frame.node];
    if (frame.stage == 0) {
      for (std::size_t i = frame.begin; i < frame.end; ++i) {
        const double err = y[work[i]] - node.value;
        frame.leaf_sse += err * err;
      }
      if (node.is_leaf()) {
        returned = frame.leaf_sse;
        stack.pop_back();
        continue;
      }
      frame.mid = split_range(x, work, frame.begin, frame.end, node.feature,
                              node.threshold, scratch);
      frame.stage = 1;
      const std::size_t child = node.left;
      const std::size_t begin = frame.begin;
      const std::size_t mid = frame.mid;
      stack.push_back({child, begin, mid});
      continue;
    }
    if (frame.stage == 1) {
      frame.child_sse += returned;
      frame.stage = 2;
      const std::size_t child = node.right;
      const std::size_t mid = frame.mid;
      const std::size_t end = frame.end;
      stack.push_back({child, mid, end});
      continue;
    }
    frame.child_sse += returned;
    if (frame.leaf_sse <= frame.child_sse) {
      // Reduced-error pruning: the split does not pay for itself on unseen
      // data; collapse. (Children stay in the node pool but are
      // unreachable; serialization walks from the root so they are dropped
      // on save.)
      node.left = kNoNode;
      node.right = kNoNode;
      returned = frame.leaf_sse;
    } else {
      returned = frame.child_sse;
    }
    stack.pop_back();
  }
  return returned;
}


void RepTree::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  static obs::Histogram& fit_hist = obs::Registry::global().histogram(
      "f2pm_ml_tree_fit_seconds",
      "Tree-learner fit wall-clock time (growth engine).",
      obs::Histogram::default_latency_bounds(), "model=\"reptree\"");
  const obs::ScopedTimer fit_timer(fit_hist);
  nodes_.clear();
  root_ = kNoNode;
  num_inputs_ = x.cols();

  const std::size_t n = x.rows();
  std::vector<std::size_t> grow_rows;
  std::vector<std::size_t> prune_rows;
  const bool can_prune = options_.prune && n >= 2 * options_.num_folds;
  if (can_prune) {
    util::Rng rng(options_.seed);
    const auto perm = rng.permutation(n);
    const std::size_t prune_count = n / options_.num_folds;
    // Membership flags + one ascending sweep: same sets, already sorted —
    // exactly what sorting the two permutation halves produced, in O(n).
    std::vector<std::uint8_t> in_prune(n, 0);
    for (std::size_t i = 0; i < prune_count; ++i) in_prune[perm[i]] = 1;
    prune_rows.reserve(prune_count);
    grow_rows.reserve(n - prune_count);
    for (std::size_t r = 0; r < n; ++r) {
      (in_prune[r] != 0 ? prune_rows : grow_rows).push_back(r);
    }
  } else {
    grow_rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) grow_rows[i] = i;
  }

  TreeGrowthEngine::Config engine_config;
  engine_config.mode = options_.split_mode;
  engine_config.histogram_bins = options_.histogram_bins;
  engine_config.min_split_size = 2 * options_.min_instances_per_leaf;
  TreeGrowthEngine engine(x, y, std::move(grow_rows), engine_config);
  const Moments root_moments = engine.moments(engine.root());
  const double root_variance =
      root_moments.count == 0
          ? 0.0
          : root_moments.sse() / static_cast<double>(root_moments.count);
  root_ = build(engine, root_variance);
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;
  if (can_prune) {
    prune_subtree(root_, x, y, prune_rows);
  }
  importances_.assign(x.cols(), 0.0);
  backfit_and_importances(root_, x, y, all_rows, can_prune);
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  fitted_ = true;
}

void RepTree::backfit_and_importances(std::size_t root_id,
                                      const linalg::Matrix& x,
                                      std::span<const double> y,
                                      const std::vector<std::size_t>& rows,
                                      bool update_values) {
  // Post-order explicit-stack walk mirroring prune_subtree, over the same
  // shared in-place workspace. Each frame's stage-0 moments serve both
  // fused passes: the mean backfits the node value (WEKA re-estimation
  // from grow + prune rows) and the SSE feeds the importance credits — a
  // leaf yields its SSE; an internal node credits (own SSE - children's
  // yield) to its split feature and yields the children's sum, exactly as
  // the two separate seed passes did.
  struct Frame {
    std::size_t node;
    std::size_t begin;
    std::size_t end;
    std::size_t mid = 0;
    double sse = 0.0;
    double child_sse = 0.0;
    int stage = 0;
  };
  std::vector<std::size_t> work(rows);
  std::vector<std::size_t> scratch(work.size());
  std::vector<Frame> stack;
  stack.push_back({root_id, 0, work.size()});
  double returned = 0.0;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    Node& node = nodes_[frame.node];
    if (frame.stage == 0) {
      Moments moments;
      for (std::size_t i = frame.begin; i < frame.end; ++i) {
        moments.add(y[work[i]]);
      }
      frame.sse = moments.sse();
      if (update_values && frame.end > frame.begin) {
        node.value = moments.mean();
      }
      if (node.is_leaf()) {
        returned = frame.sse;
        stack.pop_back();
        continue;
      }
      frame.mid = split_range(x, work, frame.begin, frame.end, node.feature,
                              node.threshold, scratch);
      frame.stage = 1;
      const std::size_t child = node.left;
      const std::size_t begin = frame.begin;
      const std::size_t mid = frame.mid;
      stack.push_back({child, begin, mid});
      continue;
    }
    if (frame.stage == 1) {
      frame.child_sse += returned;
      frame.stage = 2;
      const std::size_t child = node.right;
      const std::size_t mid = frame.mid;
      const std::size_t end = frame.end;
      stack.push_back({child, mid, end});
      continue;
    }
    frame.child_sse += returned;
    importances_[node.feature] += std::max(frame.sse - frame.child_sse, 0.0);
    returned = frame.child_sse;
    stack.pop_back();
  }
}

double RepTree::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  std::size_t node_id = root_;
  while (!nodes_[node_id].is_leaf()) {
    const Node& node = nodes_[node_id];
    node_id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].value;
}

std::vector<double> RepTree::predict(const linalg::Matrix& x) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  std::vector<double> out(x.rows());
  const Node* nodes = nodes_.data();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.row(r).data();
    std::size_t id = root_;
    while (nodes[id].left != kNoNode) {
      const Node& node = nodes[id];
      id = row[node.feature] <= node.threshold ? node.left : node.right;
    }
    out[r] = nodes[id].value;
  }
  return out;
}

std::size_t RepTree::num_leaves() const {
  if (root_ == kNoNode) return 0;
  std::size_t count = 0;
  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    if (nodes_[id].is_leaf()) {
      ++count;
    } else {
      stack.push_back(nodes_[id].left);
      stack.push_back(nodes_[id].right);
    }
  }
  return count;
}

std::size_t RepTree::subtree_depth(std::size_t node_id) const {
  // Iterative: track (node, depth) pairs and take the maximum leaf depth.
  std::size_t max_depth = 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{node_id, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    if (nodes_[id].is_leaf()) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({nodes_[id].left, depth + 1});
      stack.push_back({nodes_[id].right, depth + 1});
    }
  }
  return max_depth;
}

std::size_t RepTree::depth() const {
  return root_ == kNoNode ? 0 : subtree_depth(root_);
}

void RepTree::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("RepTree::save before fit");
  writer.write_u64(num_inputs_);
  // Emit reachable nodes in preorder with re-numbered child links.
  std::vector<std::uint64_t> features;
  std::vector<double> thresholds;
  std::vector<double> values;
  std::vector<std::uint64_t> lefts;
  std::vector<std::uint64_t> rights;
  struct Frame {
    std::size_t node;
    std::size_t parent_slot;  // index into lefts/rights to patch, or npos
    bool is_left;
  };
  std::vector<Frame> stack{{root_, kNoNode, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    const std::size_t new_id = features.size();
    if (frame.parent_slot != kNoNode) {
      (frame.is_left ? lefts : rights)[frame.parent_slot] = new_id;
    }
    features.push_back(node.feature);
    thresholds.push_back(node.threshold);
    values.push_back(node.value);
    lefts.push_back(kNoNode);
    rights.push_back(kNoNode);
    if (!node.is_leaf()) {
      stack.push_back({node.right, new_id, false});
      stack.push_back({node.left, new_id, true});
    }
  }
  writer.write_u64s(features);
  writer.write_doubles(thresholds);
  writer.write_doubles(values);
  writer.write_u64s(lefts);
  writer.write_u64s(rights);
}

std::unique_ptr<RepTree> RepTree::load(util::BinaryReader& reader) {
  auto model = std::make_unique<RepTree>();
  model->num_inputs_ = reader.read_u64();
  const auto features = reader.read_u64s();
  const auto thresholds = reader.read_doubles();
  const auto values = reader.read_doubles();
  const auto lefts = reader.read_u64s();
  const auto rights = reader.read_u64s();
  const std::size_t count = features.size();
  if (thresholds.size() != count || values.size() != count ||
      lefts.size() != count || rights.size() != count || count == 0) {
    throw std::runtime_error("RepTree::load: inconsistent archive");
  }
  model->nodes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node& node = model->nodes_[i];
    node.feature = features[i];
    node.threshold = thresholds[i];
    node.value = values[i];
    node.left = lefts[i];
    node.right = rights[i];
    const bool left_leaf = node.left == kNoNode;
    const bool right_leaf = node.right == kNoNode;
    if (left_leaf != right_leaf ||
        (!left_leaf && (node.left >= count || node.right >= count))) {
      throw std::runtime_error("RepTree::load: corrupt tree links");
    }
  }
  model->root_ = 0;
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
