#include "ml/reptree.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace f2pm::ml {

RepTree::RepTree(RepTreeOptions options) : options_(options) {
  if (options_.min_instances_per_leaf == 0) {
    throw std::invalid_argument("RepTree: min_instances_per_leaf must be > 0");
  }
  if (options_.num_folds < 2) {
    throw std::invalid_argument("RepTree: num_folds must be >= 2");
  }
}

std::size_t RepTree::build(const linalg::Matrix& x, std::span<const double> y,
                           const std::vector<std::size_t>& rows,
                           std::size_t depth, double root_variance) {
  const Moments moments = compute_moments(y, rows);
  Node node;
  node.value = moments.mean();
  node.grow_count = static_cast<double>(moments.count);

  const bool depth_ok =
      options_.max_depth == 0 || depth < options_.max_depth;
  const double variance =
      moments.count == 0 ? 0.0
                         : moments.sse() / static_cast<double>(moments.count);
  const bool variance_ok =
      variance > options_.min_variance_proportion * root_variance;
  BestSplit split;
  if (depth_ok && variance_ok) {
    split = find_best_split(x, y, rows, options_.min_instances_per_leaf,
                            SplitCriterion::kVarianceReduction);
  }
  const std::size_t node_id = nodes_.size();
  nodes_.push_back(node);
  if (!split.found) return node_id;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  partition_rows(x, rows, split.feature, split.threshold, left_rows,
                 right_rows);
  // Children are built after the parent is stored, so fix up links by id.
  const std::size_t left_id =
      build(x, y, left_rows, depth + 1, root_variance);
  const std::size_t right_id =
      build(x, y, right_rows, depth + 1, root_variance);
  nodes_[node_id].feature = split.feature;
  nodes_[node_id].threshold = split.threshold;
  nodes_[node_id].left = left_id;
  nodes_[node_id].right = right_id;
  return node_id;
}

double RepTree::prune_subtree(std::size_t node_id, const linalg::Matrix& x,
                              std::span<const double> y,
                              const std::vector<std::size_t>& prune_rows) {
  Node& node = nodes_[node_id];
  // SSE on the prune set if this node were a leaf predicting node.value.
  double leaf_sse = 0.0;
  for (std::size_t r : prune_rows) {
    const double err = y[r] - node.value;
    leaf_sse += err * err;
  }
  if (node.is_leaf()) return leaf_sse;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  partition_rows(x, prune_rows, node.feature, node.threshold, left_rows,
                 right_rows);
  const double subtree_sse =
      prune_subtree(node.left, x, y, left_rows) +
      prune_subtree(node.right, x, y, right_rows);
  if (leaf_sse <= subtree_sse) {
    // Reduced-error pruning: the split does not pay for itself on unseen
    // data; collapse. (Children stay in the node pool but are unreachable;
    // serialization walks from the root so they are dropped on save.)
    node.left = kNoNode;
    node.right = kNoNode;
    return leaf_sse;
  }
  return subtree_sse;
}

void RepTree::backfit(std::size_t node_id, const linalg::Matrix& x,
                      std::span<const double> y,
                      const std::vector<std::size_t>& rows) {
  Node& node = nodes_[node_id];
  // Re-estimate the node value from the full training data reaching it
  // (grow + prune rows); this is WEKA's backfitting step.
  if (!rows.empty()) {
    const Moments moments = compute_moments(y, rows);
    node.value = moments.mean();
  }
  if (node.is_leaf()) return;
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  partition_rows(x, rows, node.feature, node.threshold, left_rows, right_rows);
  backfit(node.left, x, y, left_rows);
  backfit(node.right, x, y, right_rows);
}

void RepTree::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  nodes_.clear();
  root_ = kNoNode;
  num_inputs_ = x.cols();

  const std::size_t n = x.rows();
  std::vector<std::size_t> grow_rows;
  std::vector<std::size_t> prune_rows;
  const bool can_prune = options_.prune && n >= 2 * options_.num_folds;
  if (can_prune) {
    util::Rng rng(options_.seed);
    const auto perm = rng.permutation(n);
    const std::size_t prune_count = n / options_.num_folds;
    prune_rows.assign(perm.begin(), perm.begin() + prune_count);
    grow_rows.assign(perm.begin() + prune_count, perm.end());
    std::sort(grow_rows.begin(), grow_rows.end());
    std::sort(prune_rows.begin(), prune_rows.end());
  } else {
    grow_rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) grow_rows[i] = i;
  }

  const Moments root_moments = compute_moments(y, grow_rows);
  const double root_variance =
      root_moments.count == 0
          ? 0.0
          : root_moments.sse() / static_cast<double>(root_moments.count);
  root_ = build(x, y, grow_rows, 0, root_variance);
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;
  if (can_prune) {
    prune_subtree(root_, x, y, prune_rows);
    backfit(root_, x, y, all_rows);
  }
  importances_.assign(x.cols(), 0.0);
  accumulate_importances(root_, x, y, all_rows);
  double total = 0.0;
  for (double v : importances_) total += v;
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  fitted_ = true;
}

double RepTree::accumulate_importances(
    std::size_t node_id, const linalg::Matrix& x, std::span<const double> y,
    const std::vector<std::size_t>& rows) {
  const Node& node = nodes_[node_id];
  const double sse = compute_moments(y, rows).sse();
  if (node.is_leaf()) return sse;
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  partition_rows(x, rows, node.feature, node.threshold, left_rows,
                 right_rows);
  const double child_sse =
      accumulate_importances(node.left, x, y, left_rows) +
      accumulate_importances(node.right, x, y, right_rows);
  importances_[node.feature] += std::max(sse - child_sse, 0.0);
  return child_sse;
}

double RepTree::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  std::size_t node_id = root_;
  while (!nodes_[node_id].is_leaf()) {
    const Node& node = nodes_[node_id];
    node_id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].value;
}

std::size_t RepTree::num_leaves() const {
  if (root_ == kNoNode) return 0;
  std::size_t count = 0;
  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    if (nodes_[id].is_leaf()) {
      ++count;
    } else {
      stack.push_back(nodes_[id].left);
      stack.push_back(nodes_[id].right);
    }
  }
  return count;
}

std::size_t RepTree::subtree_depth(std::size_t node_id) const {
  if (nodes_[node_id].is_leaf()) return 0;
  return 1 + std::max(subtree_depth(nodes_[node_id].left),
                      subtree_depth(nodes_[node_id].right));
}

std::size_t RepTree::depth() const {
  return root_ == kNoNode ? 0 : subtree_depth(root_);
}

void RepTree::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("RepTree::save before fit");
  writer.write_u64(num_inputs_);
  // Emit reachable nodes in preorder with re-numbered child links.
  std::vector<std::uint64_t> features;
  std::vector<double> thresholds;
  std::vector<double> values;
  std::vector<std::uint64_t> lefts;
  std::vector<std::uint64_t> rights;
  struct Frame {
    std::size_t node;
    std::size_t parent_slot;  // index into lefts/rights to patch, or npos
    bool is_left;
  };
  std::vector<Frame> stack{{root_, kNoNode, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    const std::size_t new_id = features.size();
    if (frame.parent_slot != kNoNode) {
      (frame.is_left ? lefts : rights)[frame.parent_slot] = new_id;
    }
    features.push_back(node.feature);
    thresholds.push_back(node.threshold);
    values.push_back(node.value);
    lefts.push_back(kNoNode);
    rights.push_back(kNoNode);
    if (!node.is_leaf()) {
      stack.push_back({node.right, new_id, false});
      stack.push_back({node.left, new_id, true});
    }
  }
  writer.write_u64s(features);
  writer.write_doubles(thresholds);
  writer.write_doubles(values);
  writer.write_u64s(lefts);
  writer.write_u64s(rights);
}

std::unique_ptr<RepTree> RepTree::load(util::BinaryReader& reader) {
  auto model = std::make_unique<RepTree>();
  model->num_inputs_ = reader.read_u64();
  const auto features = reader.read_u64s();
  const auto thresholds = reader.read_doubles();
  const auto values = reader.read_doubles();
  const auto lefts = reader.read_u64s();
  const auto rights = reader.read_u64s();
  const std::size_t count = features.size();
  if (thresholds.size() != count || values.size() != count ||
      lefts.size() != count || rights.size() != count || count == 0) {
    throw std::runtime_error("RepTree::load: inconsistent archive");
  }
  model->nodes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node& node = model->nodes_[i];
    node.feature = features[i];
    node.threshold = thresholds[i];
    node.value = values[i];
    node.left = lefts[i];
    node.right = rights[i];
    const bool left_leaf = node.left == kNoNode;
    const bool right_leaf = node.right == kNoNode;
    if (left_leaf != right_leaf ||
        (!left_leaf && (node.left >= count || node.right >= count))) {
      throw std::runtime_error("RepTree::load: corrupt tree links");
    }
  }
  model->root_ = 0;
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
