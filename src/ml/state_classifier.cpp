#include "ml/state_classifier.hpp"

#include <algorithm>
#include <stdexcept>

namespace f2pm::ml {

std::string_view state_name(SystemState state) noexcept {
  switch (state) {
    case SystemState::kAllOk:
      return "all-ok";
    case SystemState::kWarning:
      return "warning";
    case SystemState::kDanger:
      return "danger";
  }
  return "?";
}

SystemState state_from_rttf(double rttf, const StateThresholds& thresholds) {
  if (rttf < thresholds.danger_seconds) return SystemState::kDanger;
  if (rttf < thresholds.warning_seconds) return SystemState::kWarning;
  return SystemState::kAllOk;
}

std::vector<SystemState> states_from_rttf(std::span<const double> rttf,
                                          const StateThresholds& thresholds) {
  std::vector<SystemState> states;
  states.reserve(rttf.size());
  for (double value : rttf) states.push_back(state_from_rttf(value, thresholds));
  return states;
}

namespace {

using Counts = std::array<std::size_t, kNumStates>;

double gini(const Counts& counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double impurity = 1.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

SystemState majority_of(const Counts& counts) {
  std::size_t best = 0;
  for (std::size_t s = 1; s < kNumStates; ++s) {
    if (counts[s] > counts[best]) best = s;
  }
  return static_cast<SystemState>(static_cast<int>(best));
}

struct GiniSplit {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;
  double impurity_drop = 0.0;
};

GiniSplit find_best_gini_split(const linalg::Matrix& x,
                               std::span<const SystemState> labels,
                               const std::vector<std::size_t>& rows,
                               std::size_t min_leaf) {
  GiniSplit best;
  if (rows.size() < 2 * min_leaf) return best;
  Counts total{};
  for (std::size_t r : rows) ++total[static_cast<std::size_t>(labels[r])];
  const double parent_gini = gini(total);
  if (parent_gini == 0.0) return best;  // pure node
  const auto n = static_cast<double>(rows.size());

  std::vector<std::size_t> sorted(rows);
  for (std::size_t feature = 0; feature < x.cols(); ++feature) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return x(a, feature) < x(b, feature);
              });
    Counts left{};
    Counts right = total;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const auto label = static_cast<std::size_t>(labels[sorted[i]]);
      ++left[label];
      --right[label];
      const double v_here = x(sorted[i], feature);
      const double v_next = x(sorted[i + 1], feature);
      if (v_here == v_next) continue;
      const auto left_count = static_cast<double>(i + 1);
      const double right_count = n - left_count;
      if (left_count < static_cast<double>(min_leaf) ||
          right_count < static_cast<double>(min_leaf)) {
        continue;
      }
      const double weighted =
          (left_count * gini(left) + right_count * gini(right)) / n;
      const double drop = parent_gini - weighted;
      if (drop > best.impurity_drop) {
        best.found = true;
        best.feature = feature;
        best.threshold = v_here + (v_next - v_here) / 2.0;
        best.impurity_drop = drop;
      }
    }
  }
  return best;
}

}  // namespace

StateClassifierTree::StateClassifierTree(StateClassifierOptions options)
    : options_(options) {
  if (options_.min_instances_per_leaf == 0) {
    throw std::invalid_argument(
        "StateClassifierTree: min_instances_per_leaf must be > 0");
  }
}

std::size_t StateClassifierTree::build(const linalg::Matrix& x,
                                       std::span<const SystemState> labels,
                                       const std::vector<std::size_t>& rows,
                                       std::size_t depth) {
  Counts counts{};
  for (std::size_t r : rows) ++counts[static_cast<std::size_t>(labels[r])];
  Node node;
  node.majority = majority_of(counts);
  const bool depth_ok = options_.max_depth == 0 || depth < options_.max_depth;
  GiniSplit split;
  if (depth_ok) {
    split = find_best_gini_split(x, labels, rows,
                                 options_.min_instances_per_leaf);
  }
  const std::size_t node_id = nodes_.size();
  nodes_.push_back(node);
  if (!split.found) return node_id;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    (x(r, split.feature) <= split.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  const std::size_t left_id = build(x, labels, left_rows, depth + 1);
  const std::size_t right_id = build(x, labels, right_rows, depth + 1);
  nodes_[node_id].feature = split.feature;
  nodes_[node_id].threshold = split.threshold;
  nodes_[node_id].left = left_id;
  nodes_[node_id].right = right_id;
  return node_id;
}

void StateClassifierTree::fit(const linalg::Matrix& x,
                              std::span<const SystemState> labels) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("StateClassifierTree: empty training set");
  }
  if (x.rows() != labels.size()) {
    throw std::invalid_argument(
        "StateClassifierTree: x/label count mismatch");
  }
  nodes_.clear();
  num_inputs_ = x.cols();
  std::vector<std::size_t> rows(x.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  root_ = build(x, labels, rows, 0);
}

SystemState StateClassifierTree::predict_row(
    std::span<const double> row) const {
  if (!is_fitted()) {
    throw std::logic_error("StateClassifierTree: predict before fit");
  }
  if (row.size() != num_inputs_) {
    throw std::invalid_argument("StateClassifierTree: input width mismatch");
  }
  std::size_t node_id = root_;
  while (!nodes_[node_id].is_leaf()) {
    const Node& node = nodes_[node_id];
    node_id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[node_id].majority;
}

std::vector<SystemState> StateClassifierTree::predict(
    const linalg::Matrix& x) const {
  std::vector<SystemState> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_row(x.row(r)));
  }
  return out;
}

std::size_t StateClassifierTree::num_leaves() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) count += node.is_leaf() ? 1 : 0;
  return count;
}

ClassificationReport evaluate_classification(
    std::span<const SystemState> predicted,
    std::span<const SystemState> actual) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    throw std::invalid_argument(
        "evaluate_classification: bad prediction/label sizes");
  }
  ClassificationReport report;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const auto a = static_cast<std::size_t>(actual[i]);
    const auto p = static_cast<std::size_t>(predicted[i]);
    ++report.confusion[a][p];
    correct += a == p ? 1 : 0;
  }
  report.accuracy =
      static_cast<double>(correct) / static_cast<double>(predicted.size());
  const auto danger = static_cast<std::size_t>(SystemState::kDanger);
  std::size_t danger_total = 0;
  for (std::size_t p = 0; p < kNumStates; ++p) {
    danger_total += report.confusion[danger][p];
  }
  report.danger_recall =
      danger_total == 0
          ? 0.0
          : static_cast<double>(report.confusion[danger][danger]) /
                static_cast<double>(danger_total);
  return report;
}

}  // namespace f2pm::ml
