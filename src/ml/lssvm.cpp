#include "ml/lssvm.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/solve.hpp"

namespace f2pm::ml {

LsSvm::LsSvm(LsSvmOptions options) : options_(options) {
  if (options_.gamma <= 0.0) {
    throw std::invalid_argument("LsSvm: gamma must be > 0");
  }
}

void LsSvm::fit(const linalg::Matrix& x_raw, std::span<const double> y_raw) {
  check_fit_args(x_raw, y_raw);
  num_inputs_ = x_raw.cols();
  input_scaler_ = data::Standardizer::fit(x_raw);
  target_scaler_ = data::TargetScaler::fit(
      std::vector<double>(y_raw.begin(), y_raw.end()));
  support_ = input_scaler_.transform(x_raw);
  const std::vector<double> y = target_scaler_.transform(
      std::vector<double>(y_raw.begin(), y_raw.end()));

  fitted_kernel_ = options_.kernel;
  fitted_kernel_.gamma = resolve_gamma(options_.kernel, support_.cols());

  const std::size_t n = support_.rows();
  // Bordered system: row/col 0 is the bias, the rest is K + I/γ. Kernel
  // rows are written straight into the system via kernel_row (parallel,
  // with the RBF exp hoisted), so no separate n x n kernel matrix is ever
  // materialized.
  const std::vector<double> norms = row_squared_norms(support_);
  linalg::Matrix system(n + 1, n + 1);
  std::vector<double> rhs(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = system.row(i + 1);
    kernel_row(fitted_kernel_, support_, i, norms, row.subspan(1));
    row[0] = 1.0;
    system(0, i + 1) = 1.0;
    system(i + 1, i + 1) += 1.0 / options_.gamma;
    rhs[i + 1] = y[i];
  }
  const std::vector<double> solution = linalg::solve(system, rhs);
  bias_ = solution[0];
  alphas_.assign(solution.begin() + 1, solution.end());
  fitted_ = true;
}

double LsSvm::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  std::vector<double> scaled(row.size());
  const auto& means = input_scaler_.means();
  const auto& scales = input_scaler_.scales();
  for (std::size_t c = 0; c < row.size(); ++c) {
    scaled[c] = (row[c] - means[c]) / scales[c];
  }
  double value = bias_;
  for (std::size_t s = 0; s < support_.rows(); ++s) {
    value +=
        alphas_[s] * kernel_value(fitted_kernel_, support_.row(s), scaled);
  }
  return target_scaler_.inverse(value);
}

std::vector<double> LsSvm::predict(const linalg::Matrix& x) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  const linalg::Matrix scaled = input_scaler_.transform(x);
  const linalg::Matrix k = kernel_matrix(fitted_kernel_, scaled, support_);
  std::vector<double> out = linalg::gemv(k, alphas_);
  for (double& value : out) value = target_scaler_.inverse(value + bias_);
  return out;
}

void LsSvm::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("LsSvm::save before fit");
  writer.write_u64(num_inputs_);
  fitted_kernel_.save(writer);
  writer.write_double(options_.gamma);
  writer.write_double(bias_);
  writer.write_doubles(alphas_);
  writer.write_u64(support_.rows());
  for (std::size_t r = 0; r < support_.rows(); ++r) {
    const auto row = support_.row(r);
    writer.write_doubles(std::vector<double>(row.begin(), row.end()));
  }
  writer.write_doubles(input_scaler_.means());
  writer.write_doubles(input_scaler_.scales());
  writer.write_double(target_scaler_.mean);
  writer.write_double(target_scaler_.scale);
}

std::unique_ptr<LsSvm> LsSvm::load(util::BinaryReader& reader) {
  auto model = std::make_unique<LsSvm>();
  model->num_inputs_ = reader.read_u64();
  model->fitted_kernel_ = KernelParams::load(reader);
  model->options_.gamma = reader.read_double();
  model->bias_ = reader.read_double();
  model->alphas_ = reader.read_doubles();
  const std::uint64_t sv_count = reader.read_u64();
  if (sv_count != model->alphas_.size()) {
    throw std::runtime_error("LsSvm::load: inconsistent archive");
  }
  model->support_ = linalg::Matrix(sv_count, model->num_inputs_);
  for (std::uint64_t r = 0; r < sv_count; ++r) {
    const auto row = reader.read_doubles();
    if (row.size() != model->num_inputs_) {
      throw std::runtime_error("LsSvm::load: bad support vector width");
    }
    std::copy(row.begin(), row.end(), model->support_.row(r).begin());
  }
  const auto means = reader.read_doubles();
  const auto scales = reader.read_doubles();
  if (means.size() != model->num_inputs_ ||
      scales.size() != model->num_inputs_) {
    throw std::runtime_error("LsSvm::load: bad scaler data");
  }
  model->input_scaler_ = data::Standardizer::from_moments(means, scales);
  model->target_scaler_.mean = reader.read_double();
  model->target_scaler_.scale = reader.read_double();
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
