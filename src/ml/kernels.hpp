// Kernel functions shared by the SVM-family methods (SVR, LS-SVM): the
// non-linear map φ of the paper's Eq. (4) enters only through these inner
// products. Kernel-matrix assembly is parallel over row blocks.
#pragma once

#include <span>
#include <string>

#include "linalg/matrix.hpp"
#include "util/serialization.hpp"

namespace f2pm::ml {

enum class KernelType {
  kLinear,      ///< k(a, b) = a·b
  kRbf,         ///< k(a, b) = exp(-gamma ||a - b||²)
  kPolynomial,  ///< k(a, b) = (gamma a·b + coef0)^degree
};

/// Kernel selection + hyperparameters.
struct KernelParams {
  KernelType type = KernelType::kRbf;
  /// RBF width / polynomial scale. <= 0 means "auto": 1 / num_features,
  /// resolved at fit time.
  double gamma = 0.0;
  double coef0 = 1.0;
  int degree = 3;

  [[nodiscard]] std::string to_string() const;
  void save(util::BinaryWriter& writer) const;
  static KernelParams load(util::BinaryReader& reader);
};

/// k(a, b); spans must be equal length.
double kernel_value(const KernelParams& params, std::span<const double> a,
                    std::span<const double> b);

/// Symmetric n x n kernel matrix of the rows of x. Parallel over rows.
linalg::Matrix kernel_matrix(const KernelParams& params,
                             const linalg::Matrix& x);

/// Cross-kernel matrix: K(i, j) = k(a_i, b_j), size a.rows() x b.rows().
linalg::Matrix kernel_matrix(const KernelParams& params,
                             const linalg::Matrix& a,
                             const linalg::Matrix& b);

/// Per-row squared Euclidean norms ||x_i||², precomputed once so RBF rows
/// reduce to a dot-product pass plus a separate vectorizable exp pass
/// (||a - b||² = ||a||² + ||b||² - 2 a·b).
std::vector<double> row_squared_norms(const linalg::Matrix& x);

/// Writes K(i, j) for every row j of x into `out` (out.size() must equal
/// x.rows()). `row_norms` must be row_squared_norms(x); it is only read by
/// the RBF kernel. Specialised per kernel type — the transcendental is
/// hoisted out of the distance loop — and parallel over column blocks for
/// large n. This is the on-demand primitive under KernelRowCache.
void kernel_row(const KernelParams& params, const linalg::Matrix& x,
                std::size_t i, std::span<const double> row_norms,
                std::span<double> out);

/// Resolves gamma <= 0 to the 1/num_features default.
double resolve_gamma(const KernelParams& params, std::size_t num_features);

}  // namespace f2pm::ml
