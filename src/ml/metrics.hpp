// Model quality metrics (paper §III-D): MAE, RAE, Maximum Absolute Error,
// the Soft-MAE that tolerates errors below a user threshold, plus RMSE/R²
// as additional diagnostics, and the timed evaluation harness that fills
// the paper's Tables II-IV.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/model.hpp"

namespace f2pm::ml {

/// Mean Absolute Error, Eq. (5): (1/n) Σ |f_i - y_i|.
double mean_absolute_error(std::span<const double> predicted,
                           std::span<const double> actual);

/// Relative Absolute Error, Eq. (6): Σ|f_i - y_i| / Σ|Ȳ - y_i|, where Ȳ is
/// the mean of |y| (Eq. 7) — the error of the trivial mean predictor.
double relative_absolute_error(std::span<const double> predicted,
                               std::span<const double> actual);

/// Maximum Absolute Error: max_i |f_i - y_i|.
double max_absolute_error(std::span<const double> predicted,
                          std::span<const double> actual);

/// Soft-MAE: like MAE but errors below `threshold` count as zero. The
/// threshold encodes the lead time of a proactive correcting action: an
/// error smaller than the rejuvenation lead time is harmless.
double soft_mean_absolute_error(std::span<const double> predicted,
                                std::span<const double> actual,
                                double threshold);

/// Root Mean Squared Error.
double root_mean_squared_error(std::span<const double> predicted,
                               std::span<const double> actual);

/// Coefficient of determination; 0 when the target is constant.
double r_squared(std::span<const double> predicted,
                 std::span<const double> actual);

/// The full per-model scorecard F2PM hands to the user.
struct EvaluationReport {
  std::string model_name;
  std::size_t num_features = 0;
  std::size_t train_rows = 0;
  std::size_t validation_rows = 0;

  double mae = 0.0;
  double rae = 0.0;
  double max_ae = 0.0;
  double soft_mae = 0.0;
  double soft_mae_threshold = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;

  double training_seconds = 0.0;
  double validation_seconds = 0.0;
};

/// Trains `model` on (x_train, y_train), validates on (x_val, y_val), and
/// measures both phases. `soft_threshold` is the S-MAE tolerance in the
/// target's units (the paper uses 10% of the maximum RTTF).
EvaluationReport evaluate_model(Regressor& model, const linalg::Matrix& x_train,
                                std::span<const double> y_train,
                                const linalg::Matrix& x_val,
                                std::span<const double> y_val,
                                double soft_threshold);

}  // namespace f2pm::ml
