#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace f2pm::ml {

namespace {

void check_sizes(std::span<const double> predicted,
                 std::span<const double> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("metrics: predicted/actual size mismatch");
  }
  if (predicted.empty()) {
    throw std::invalid_argument("metrics: empty validation set");
  }
}

}  // namespace

double mean_absolute_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  check_sizes(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double relative_absolute_error(std::span<const double> predicted,
                               std::span<const double> actual) {
  check_sizes(predicted, actual);
  // Eq. (7): the baseline predictor is the mean of y — the error is
  // normalized by Σ|y_i − ȳ|. (Using mean(|y|) is identical on the
  // paper's non-negative RTTF targets but wrong for signed targets.)
  double mean_y = 0.0;
  for (double v : actual) mean_y += v;
  mean_y /= static_cast<double>(actual.size());
  double err = 0.0;
  double baseline = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    err += std::abs(predicted[i] - actual[i]);
    baseline += std::abs(actual[i] - mean_y);
  }
  if (baseline == 0.0) return err == 0.0 ? 0.0 : HUGE_VAL;
  return err / baseline;
}

double max_absolute_error(std::span<const double> predicted,
                          std::span<const double> actual) {
  check_sizes(predicted, actual);
  double max_err = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    max_err = std::max(max_err, std::abs(predicted[i] - actual[i]));
  }
  return max_err;
}

double soft_mean_absolute_error(std::span<const double> predicted,
                                std::span<const double> actual,
                                double threshold) {
  check_sizes(predicted, actual);
  if (threshold < 0.0) {
    throw std::invalid_argument("soft_mean_absolute_error: threshold < 0");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double err = std::abs(predicted[i] - actual[i]);
    if (err >= threshold) acc += err;
  }
  return acc / static_cast<double>(predicted.size());
}

double root_mean_squared_error(std::span<const double> predicted,
                               std::span<const double> actual) {
  check_sizes(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double err = predicted[i] - actual[i];
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  check_sizes(predicted, actual);
  double mean_y = 0.0;
  for (double v : actual) mean_y += v;
  mean_y /= static_cast<double>(actual.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean_y) * (actual[i] - mean_y);
  }
  return ss_tot == 0.0 ? 0.0 : 1.0 - ss_res / ss_tot;
}

EvaluationReport evaluate_model(Regressor& model,
                                const linalg::Matrix& x_train,
                                std::span<const double> y_train,
                                const linalg::Matrix& x_val,
                                std::span<const double> y_val,
                                double soft_threshold) {
  EvaluationReport report;
  report.model_name = model.name();
  report.num_features = x_train.cols();
  report.train_rows = x_train.rows();
  report.validation_rows = x_val.rows();
  report.soft_mae_threshold = soft_threshold;

  report.training_seconds = util::timed([&] { model.fit(x_train, y_train); });

  const auto [predicted, validation_seconds] = util::timed(
      [&] { return model.predict(x_val); });
  // Validation time includes metric computation, as in the paper's Table IV.
  util::WallTimer metric_timer;
  report.mae = mean_absolute_error(predicted, y_val);
  report.rae = relative_absolute_error(predicted, y_val);
  report.max_ae = max_absolute_error(predicted, y_val);
  report.soft_mae = soft_mean_absolute_error(predicted, y_val, soft_threshold);
  report.rmse = root_mean_squared_error(predicted, y_val);
  report.r2 = r_squared(predicted, y_val);
  report.validation_seconds =
      validation_seconds + metric_timer.elapsed_seconds();

  // The Table III/IV timings double as per-model fit/predict latency
  // series in the shared obs registry, so a live service and the benches
  // read the same measurement substrate.
  auto& registry = obs::Registry::global();
  const std::string label = "model=\"" + report.model_name + "\"";
  registry
      .histogram("f2pm_ml_fit_seconds",
                 "Model training wall-clock time (Table III source).",
                 obs::Histogram::default_latency_bounds(), label)
      .observe(report.training_seconds);
  registry
      .histogram("f2pm_ml_validate_seconds",
                 "Model validation wall-clock time, prediction plus "
                 "metrics (Table IV source).",
                 obs::Histogram::default_latency_bounds(), label)
      .observe(report.validation_seconds);
  return report;
}

}  // namespace f2pm::ml
