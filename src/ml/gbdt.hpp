// Gradient-boosted regression trees on the histogram TreeGrowthEngine
// (registry name "gbdt"): leaf-wise (best-first) growth with depth/leaf
// caps, shrinkage, row/feature subsampling, and early stopping on a
// held-out slice. The ensemble substrate the paper stops short of —
// Hutter et al.'s runtime-prediction survey found boosted trees dominate
// exactly this kind of tabular regression.
//
// Determinism contract (matches BaggedTrees): every per-round random
// decision (row sample, feature sample, holdout split) is drawn from
// seeds pre-drawn off one master RNG before any tree is fit, sampled row
// sets are kept in ascending row order, and the histogram split scans
// reduce in feature order — so a fit is bitwise identical at any
// thread-pool worker count. A 1-round fit with shrinkage 1.0, no
// subsampling, fixed-width bins and a zero base score predicts
// bit-identically to a single unpruned histogram-mode REPTree with the
// same caps (test_gbdt.cpp holds this equivalence under randomized data).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/model.hpp"
#include "ml/tree_common.hpp"

namespace f2pm::ml {

struct GbdtOptions {
  std::size_t n_rounds = 100;       ///< Boosting rounds (trees).
  double learning_rate = 0.1;       ///< Shrinkage on every leaf value.
  std::size_t max_depth = 6;        ///< 0 = unlimited.
  std::size_t max_leaves = 31;      ///< 0 = unlimited.
  std::size_t min_instances_per_leaf = 5;
  double row_subsample = 1.0;       ///< Fraction of rows per tree, (0, 1].
  double feature_subsample = 1.0;   ///< Fraction of features per tree, (0, 1].
  std::size_t histogram_bins = 64;
  BinningMode bin_mode = BinningMode::kQuantile;
  /// Consult the process-wide binning cache keyed on matrix content, so
  /// repeated fits on the same fold (e.g. a grid search sweeping shrinkage)
  /// bin once instead of once per grid point.
  bool reuse_bins = true;
  /// Initial prediction: mean of the training targets (default) or zero
  /// (the REPTree-equivalence configuration).
  enum class BaseScore { kMean, kZero };
  BaseScore base_score = BaseScore::kMean;
  /// Stop when the held-out MSE has not improved for this many rounds and
  /// truncate to the best round; 0 disables (no holdout is carved off).
  std::size_t early_stopping_rounds = 0;
  double validation_fraction = 0.15;  ///< Holdout share for early stopping.
  std::uint64_t seed = 1;
  /// Worker threads for the per-round prediction update and batched
  /// predict: 0 = global pool, 1 = serial, n = private pool of n (the
  /// worker-invariance suite fits at {1, 2, 8}).
  std::size_t fit_workers = 0;
};

/// Counters for the shared binning cache (see GbdtRegressor::fit):
/// `computed` counts actual binning computations, `hits` counts fits that
/// reused a cached binning. Process-wide and cumulative.
struct BinningCacheStats {
  std::uint64_t computed = 0;
  std::uint64_t hits = 0;
};

class GbdtRegressor : public Regressor {
 public:
  GbdtRegressor() : GbdtRegressor(GbdtOptions{}) {}
  explicit GbdtRegressor(GbdtOptions options);

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "gbdt"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<GbdtRegressor> load(util::BinaryReader& reader);

  [[nodiscard]] const GbdtOptions& options() const { return options_; }
  /// Trees kept after early-stopping truncation.
  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] double base_score() const { return base_score_; }
  /// Training MSE after each fitted round (recorded before any
  /// early-stopping truncation, so its length can exceed num_trees()).
  [[nodiscard]] const std::vector<double>& loss_history() const {
    return loss_history_;
  }

  /// Snapshot of the process-wide binning cache counters (regression test
  /// for "bin once per fold, not once per grid point").
  static BinningCacheStats binning_cache_stats();

 private:
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  ///< Leaf value, pre-scaled by the learning rate.
    std::size_t left = kNoNode;
    std::size_t right = kNoNode;
    [[nodiscard]] bool is_leaf() const { return left == kNoNode; }
  };
  struct Tree {
    std::vector<Node> nodes;  ///< Root at index 0.
  };

  [[nodiscard]] Tree grow_tree(TreeGrowthEngine& engine) const;
  /// Leaf value of one tree for a row (root at node 0).
  [[nodiscard]] static double tree_value(const Tree& tree, const double* row);

  GbdtOptions options_;
  std::vector<Tree> trees_;
  double base_score_ = 0.0;
  std::vector<double> loss_history_;
  std::size_t num_inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
