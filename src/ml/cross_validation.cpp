#include "ml/cross_validation.hpp"

#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace f2pm::ml {

CrossValidationResult k_fold_cross_validation(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const linalg::Matrix& x, std::span<const double> y, std::size_t k,
    util::Rng& rng, double soft_threshold, bool parallel) {
  const std::size_t n = x.rows();
  if (k < 2) {
    throw std::invalid_argument("k_fold_cross_validation: k must be >= 2");
  }
  if (n < k) {
    throw std::invalid_argument("k_fold_cross_validation: fewer rows than k");
  }
  const auto perm = rng.permutation(n);
  CrossValidationResult result;
  result.folds.resize(k);
  // Each fold writes only its own slot, so serial and parallel execution
  // produce identical per-fold reports (and, via the in-order aggregation
  // below, identical summary statistics).
  const auto run_fold = [&](std::size_t fold) {
    const std::size_t begin = fold * n / k;
    const std::size_t end = (fold + 1) * n / k;
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> val_rows;
    train_rows.reserve(n - (end - begin));
    val_rows.reserve(end - begin);
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) {
        val_rows.push_back(perm[i]);
      } else {
        train_rows.push_back(perm[i]);
      }
    }
    const linalg::Matrix x_train = x.select_rows(train_rows);
    const linalg::Matrix x_val = x.select_rows(val_rows);
    std::vector<double> y_train;
    std::vector<double> y_val;
    y_train.reserve(train_rows.size());
    y_val.reserve(val_rows.size());
    for (std::size_t r : train_rows) y_train.push_back(y[r]);
    for (std::size_t r : val_rows) y_val.push_back(y[r]);

    auto model = factory();
    result.folds[fold] =
        evaluate_model(*model, x_train, y_train, x_val, y_val, soft_threshold);
  };
  if (parallel) {
    parallel::parallel_for(parallel::ThreadPool::global(), 0, k, run_fold);
  } else {
    for (std::size_t fold = 0; fold < k; ++fold) run_fold(fold);
  }
  double mae_sum = 0.0;
  double mae_sq_sum = 0.0;
  for (const auto& fold : result.folds) {
    mae_sum += fold.mae;
    mae_sq_sum += fold.mae * fold.mae;
    result.mean_soft_mae += fold.soft_mae;
    result.mean_rae += fold.rae;
    result.mean_training_seconds += fold.training_seconds;
  }
  const auto kf = static_cast<double>(k);
  result.mean_mae = mae_sum / kf;
  result.mean_soft_mae /= kf;
  result.mean_rae /= kf;
  result.mean_training_seconds /= kf;
  const double var = mae_sq_sum / kf - result.mean_mae * result.mean_mae;
  result.std_mae = var > 0.0 ? std::sqrt(var) : 0.0;
  return result;
}

}  // namespace f2pm::ml
