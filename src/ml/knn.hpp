// k-nearest-neighbours regression. Not among the paper's six methods; it
// is included as the kind of user-added method §III-D explicitly allows
// ("the set can be customized by the user"), and as a hyperparameter-free
// sanity baseline in the ablation benches.
#pragma once

#include <vector>

#include "data/standardizer.hpp"
#include "ml/model.hpp"

namespace f2pm::ml {

/// KNN hyperparameters.
struct KnnOptions {
  std::size_t k = 5;
  /// Weight neighbours by inverse distance instead of uniformly.
  bool distance_weighted = true;
};

/// Brute-force KNN regressor over standardized inputs.
class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction over query blocks: squared distances come from
  /// ‖q−t‖² = ‖q‖² + ‖t‖² − 2·q·t with the cross terms computed as a block
  /// matrix product (linalg::gemm_nt_block) and the train norms cached at
  /// fit time. Equivalent to predict_row up to floating-point rounding.
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<KnnRegressor> load(util::BinaryReader& reader);

  [[nodiscard]] const KnnOptions& options() const { return options_; }

 private:
  KnnOptions options_;
  linalg::Matrix train_x_;           ///< Standardized.
  std::vector<double> train_norms_;  ///< ‖t‖² per train row (not archived).
  std::vector<double> train_y_;
  data::Standardizer input_scaler_;
  std::size_t num_inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
