#include "ml/lasso.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/stats.hpp"

namespace f2pm::ml {

namespace {

double soft_threshold(double value, double threshold) {
  if (value > threshold) return value - threshold;
  if (value < -threshold) return value + threshold;
  return 0.0;
}

}  // namespace

Lasso::Lasso(LassoOptions options) : options_(options) {
  if (options_.lambda < 0.0) {
    throw std::invalid_argument("Lasso: lambda must be >= 0");
  }
  if (options_.max_iterations == 0) {
    throw std::invalid_argument("Lasso: max_iterations must be > 0");
  }
}

void Lasso::warm_start(std::vector<double> coefficients) {
  warm_ = std::move(coefficients);
}

void Lasso::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();

  // Center columns and targets so the intercept is unpenalized.
  std::vector<double> x_mean(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) x_mean[c] += row[c];
  }
  for (double& m : x_mean) m /= static_cast<double>(n);
  const double y_mean = linalg::mean(y);

  // Column-major copy of the centered design for cache-friendly coordinate
  // sweeps, plus per-column energies z_j = Σ x_ij².
  std::vector<std::vector<double>> cols(p, std::vector<double>(n));
  std::vector<double> z(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) {
      const double v = row[c] - x_mean[c];
      cols[c][r] = v;
      z[c] += v * v;
    }
  }

  std::vector<double> beta(p, 0.0);
  if (warm_.size() == p) beta = warm_;

  // Residual r = y_centered - X_centered * beta.
  std::vector<double> residual(n);
  for (std::size_t r = 0; r < n; ++r) residual[r] = y[r] - y_mean;
  for (std::size_t c = 0; c < p; ++c) {
    if (beta[c] != 0.0) {
      linalg::axpy(-beta[c], cols[c], residual);
    }
  }

  // Minimizing ||r||² + λ||β||₁ coordinate-wise gives
  // β_j = S(ρ_j, λ/2) / z_j with ρ_j = x_jᵀ r + z_j β_j.
  // Note the objective uses the TOTAL squared error, not Eq. (2)'s mean:
  // the two differ only by rescaling λ by n, and the total-error form is
  // what makes the paper's 10^0..10^9 λ grid produce its Fig. 4 curve on
  // system features that live on KiB/percent scales.
  const double threshold = options_.lambda / 2.0;
  for (std::size_t iteration = 0; iteration < options_.max_iterations;
       ++iteration) {
    double max_step = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      if (z[j] == 0.0) {
        beta[j] = 0.0;  // constant column: never selected
        continue;
      }
      const double old = beta[j];
      const double rho = linalg::dot(cols[j], residual) + z[j] * old;
      const double updated = soft_threshold(rho, threshold) / z[j];
      if (updated != old) {
        linalg::axpy(old - updated, cols[j], residual);
        beta[j] = updated;
        // Scale the step by the column magnitude so convergence is
        // comparable across wildly different feature scales.
        max_step = std::max(
            max_step, std::abs(updated - old) *
                          std::sqrt(z[j] / static_cast<double>(n)));
      }
    }
    if (max_step < options_.tolerance) break;
  }

  for (double& b : beta) {
    if (std::abs(b) < options_.zero_threshold) b = 0.0;
  }
  coefficients_ = std::move(beta);
  intercept_ = y_mean;
  for (std::size_t c = 0; c < p; ++c) {
    intercept_ -= coefficients_[c] * x_mean[c];
  }
  warm_.clear();
  fitted_ = true;
}

double Lasso::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  return linalg::dot(row, coefficients_) + intercept_;
}

std::vector<std::size_t> Lasso::selected_features() const {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i] != 0.0) selected.push_back(i);
  }
  return selected;
}

void Lasso::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("Lasso::save before fit");
  writer.write_double(options_.lambda);
  writer.write_doubles(coefficients_);
  writer.write_double(intercept_);
}

std::unique_ptr<Lasso> Lasso::load(util::BinaryReader& reader) {
  LassoOptions options;
  options.lambda = reader.read_double();
  auto model = std::make_unique<Lasso>(options);
  model->coefficients_ = reader.read_doubles();
  model->intercept_ = reader.read_double();
  model->fitted_ = true;
  return model;
}

std::vector<LassoPathEntry> lasso_path(const linalg::Matrix& x,
                                       std::span<const double> y,
                                       const std::vector<double>& lambdas,
                                       const LassoOptions& base) {
  // Solve from the largest λ (sparsest, fastest) downwards with warm
  // starts, then restore the caller's ordering.
  std::vector<std::size_t> order(lambdas.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return lambdas[a] > lambdas[b];
  });

  std::vector<LassoPathEntry> entries(lambdas.size());
  std::vector<double> warm;
  for (std::size_t k : order) {
    LassoOptions options = base;
    options.lambda = lambdas[k];
    Lasso model(options);
    if (!warm.empty()) model.warm_start(warm);
    model.fit(x, y);
    warm = model.coefficients();
    entries[k].lambda = lambdas[k];
    entries[k].coefficients = model.coefficients();
    entries[k].intercept = model.intercept();
    entries[k].selected = model.selected_features();
  }
  return entries;
}

double lasso_lambda_max(const linalg::Matrix& x, std::span<const double> y) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  if (n == 0 || p == 0) {
    throw std::invalid_argument("lasso_lambda_max: empty input");
  }
  std::vector<double> x_mean(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) x_mean[c] += row[c];
  }
  for (double& m : x_mean) m /= static_cast<double>(n);
  const double y_mean = linalg::mean(y);
  double max_corr = 0.0;
  for (std::size_t c = 0; c < p; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      acc += (x(r, c) - x_mean[c]) * (y[r] - y_mean);
    }
    max_corr = std::max(max_corr, std::abs(acc));
  }
  return 2.0 * max_corr;
}

}  // namespace f2pm::ml
