// Bootstrap-aggregated REP-Trees ("bagging"). Not one of the paper's six
// methods — §III-D explicitly allows the user to extend the set, and a
// bagged tree is the natural upgrade over a single REP-Tree: it keeps the
// fast training while cutting the variance that makes single trees noisy
// on small campaigns. Used by the learning-curve ablation.
#pragma once

#include <memory>
#include <vector>

#include "ml/model.hpp"
#include "ml/reptree.hpp"

namespace f2pm::ml {

/// Bagging hyperparameters.
struct BaggedTreesOptions {
  std::size_t num_trees = 10;
  /// Bootstrap sample size as a fraction of the training set.
  double sample_fraction = 1.0;
  RepTreeOptions tree;  ///< Base-learner configuration.
  std::uint64_t seed = 1;
  /// Worker threads for fitting member trees: 0 = use the global pool,
  /// 1 = fit serially on the calling thread. Per-tree bootstrap and
  /// grow/prune seeds are pre-drawn from `seed`, so the fitted ensemble is
  /// bitwise identical at any worker count.
  std::size_t fit_workers = 0;
};

/// Averaged ensemble of REP-Trees over bootstrap resamples.
class BaggedTrees final : public Regressor {
 public:
  explicit BaggedTrees(BaggedTreesOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction: accumulates the member trees' batched predictions
  /// in tree order, so it matches predict_row per row exactly.
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "bagging"; }
  [[nodiscard]] bool is_fitted() const override { return !trees_.empty(); }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<BaggedTrees> load(util::BinaryReader& reader);

  [[nodiscard]] const BaggedTreesOptions& options() const { return options_; }
  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }

  /// Ensemble prediction with spread: the mean and standard deviation of
  /// the member trees' predictions. The spread is a cheap epistemic-
  /// uncertainty proxy — a rejuvenation policy can act earlier when the
  /// ensemble disagrees (predicted RTTF minus a multiple of the spread).
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  [[nodiscard]] Prediction predict_with_uncertainty(
      std::span<const double> row) const;

 private:
  BaggedTreesOptions options_;
  std::vector<std::unique_ptr<RepTree>> trees_;
  std::size_t num_inputs_ = 0;
};

}  // namespace f2pm::ml
