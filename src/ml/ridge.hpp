// Ridge (L2-regularized) regression. Not one of the paper's six methods,
// but a natural extension point: it shares the closed form with LS-SVM's
// linear-kernel special case and serves as a well-conditioned baseline in
// the ablation benches.
#pragma once

#include <vector>

#include "ml/model.hpp"

namespace f2pm::ml {

/// y ≈ x·β + b, minimizing ||y - Xβ - b||² + λ||β||² (intercept
/// unpenalized, handled by centering).
class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(double lambda = 1.0);

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  [[nodiscard]] std::string name() const override { return "ridge"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override {
    return coefficients_.size();
  }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<RidgeRegression> load(util::BinaryReader& reader);

  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coefficients_;
  }
  [[nodiscard]] double intercept() const { return intercept_; }

 private:
  double lambda_;
  std::vector<double> coefficients_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
