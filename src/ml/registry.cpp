#include "ml/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "ml/cascade.hpp"
#include "ml/ensemble.hpp"
#include "ml/exhaustion_heuristic.hpp"
#include "ml/gbdt.hpp"
#include "ml/knn.hpp"
#include "ml/lasso.hpp"
#include "ml/linear_regression.hpp"
#include "ml/lssvm.hpp"
#include "ml/m5p.hpp"
#include "ml/reptree.hpp"
#include "ml/ridge.hpp"
#include "ml/svr.hpp"

namespace f2pm::ml {

std::vector<std::string> paper_model_names() {
  return {"linear", "m5p", "reptree", "lasso", "svm", "svm2"};
}

std::vector<std::string> all_model_names() {
  auto names = paper_model_names();
  names.emplace_back("ridge");
  names.emplace_back("knn");
  names.emplace_back("bagging");
  names.emplace_back("cascade");
  names.emplace_back("gbdt");
  return names;
}

namespace {

KernelParams kernel_from_config(const util::Config& params,
                                const std::string& prefix) {
  KernelParams kernel;
  const std::string type = params.get_string(prefix + ".kernel", "rbf");
  if (type == "rbf") {
    kernel.type = KernelType::kRbf;
  } else if (type == "linear") {
    kernel.type = KernelType::kLinear;
  } else if (type == "poly") {
    kernel.type = KernelType::kPolynomial;
  } else {
    throw std::invalid_argument("unknown kernel type: " + type);
  }
  kernel.gamma = params.get_double(prefix + ".gamma", 0.01);
  kernel.coef0 = params.get_double(prefix + ".coef0", 1.0);
  kernel.degree = static_cast<int>(params.get_int(prefix + ".degree", 3));
  return kernel;
}

SplitMode split_mode_from_config(const util::Config& params,
                                 const std::string& prefix) {
  const std::string mode = params.get_string(prefix + ".split_mode", "presort");
  if (mode == "presort") return SplitMode::kPresort;
  if (mode == "naive") return SplitMode::kNaive;
  if (mode == "histogram") return SplitMode::kHistogram;
  throw std::invalid_argument("unknown split mode: " + mode);
}

/// Re-prefixes sub-model overrides: "cascade.screen.reptree.max_depth"
/// becomes "reptree.max_depth" for the screen stage only, so the two
/// cascade stages can be the same model type with different knobs.
util::Config subset_config(const util::Config& params,
                           const std::string& prefix) {
  util::Config out;
  for (const std::string& key : params.keys()) {
    if (key.rfind(prefix, 0) == 0) {
      out.set(key.substr(prefix.size()), *params.get(key));
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<Regressor> make_model(const std::string& name,
                                      const util::Config& params) {
  if (name == "linear") {
    return std::make_unique<LinearRegression>();
  }
  if (name == "ridge") {
    return std::make_unique<RidgeRegression>(
        params.get_double("ridge.lambda", 1.0));
  }
  if (name == "lasso") {
    LassoOptions options;
    options.lambda = params.get_double("lasso.lambda", 1.0);
    options.max_iterations = static_cast<std::size_t>(
        params.get_int("lasso.max_iterations", 1000));
    options.tolerance = params.get_double("lasso.tolerance", 1e-7);
    return std::make_unique<Lasso>(options);
  }
  if (name == "reptree") {
    RepTreeOptions options;
    options.min_instances_per_leaf = static_cast<std::size_t>(
        params.get_int("reptree.min_instances", 2));
    options.max_depth =
        static_cast<std::size_t>(params.get_int("reptree.max_depth", 0));
    options.num_folds =
        static_cast<std::size_t>(params.get_int("reptree.num_folds", 3));
    options.prune = params.get_bool("reptree.prune", true);
    options.seed =
        static_cast<std::uint64_t>(params.get_int("reptree.seed", 1));
    options.split_mode = split_mode_from_config(params, "reptree");
    options.histogram_bins = static_cast<std::size_t>(
        params.get_int("reptree.histogram_bins", 64));
    return std::make_unique<RepTree>(options);
  }
  if (name == "m5p") {
    M5POptions options;
    options.min_instances =
        static_cast<std::size_t>(params.get_int("m5p.min_instances", 4));
    options.prune = params.get_bool("m5p.prune", true);
    options.smoothing = params.get_bool("m5p.smoothing", true);
    options.smoothing_k = params.get_double("m5p.smoothing_k", 15.0);
    options.split_mode = split_mode_from_config(params, "m5p");
    options.histogram_bins = static_cast<std::size_t>(
        params.get_int("m5p.histogram_bins", 64));
    return std::make_unique<M5P>(options);
  }
  if (name == "svm") {
    SvrOptions options;
    options.kernel = kernel_from_config(params, "svm");
    options.c = params.get_double("svm.c", 1.0);
    options.epsilon = params.get_double("svm.epsilon", 0.01);
    options.tolerance = params.get_double("svm.tolerance", 1e-3);
    options.max_iterations = static_cast<std::size_t>(
        params.get_int("svm.max_iterations", 2'000'000));
    options.cache_bytes = static_cast<std::size_t>(
        std::max(0.0, params.get_double("svm.cache_mb", 100.0)) * (1 << 20));
    options.shrinking = params.get_bool("svm.shrinking", true);
    return std::make_unique<KernelSvr>(options);
  }
  if (name == "svm2") {
    LsSvmOptions options;
    options.kernel = kernel_from_config(params, "svm2");
    options.gamma = params.get_double("svm2.gamma", 2.0);
    return std::make_unique<LsSvm>(options);
  }
  if (name == "knn") {
    KnnOptions options;
    options.k = static_cast<std::size_t>(params.get_int("knn.k", 5));
    options.distance_weighted =
        params.get_bool("knn.distance_weighted", true);
    return std::make_unique<KnnRegressor>(options);
  }
  if (name == "heuristic") {
    return std::make_unique<ExhaustionHeuristic>();
  }
  if (name == "bagging") {
    BaggedTreesOptions options;
    options.num_trees =
        static_cast<std::size_t>(params.get_int("bagging.num_trees", 10));
    options.sample_fraction =
        params.get_double("bagging.sample_fraction", 1.0);
    options.seed =
        static_cast<std::uint64_t>(params.get_int("bagging.seed", 1));
    options.tree.split_mode = split_mode_from_config(params, "bagging");
    options.tree.histogram_bins = static_cast<std::size_t>(
        params.get_int("bagging.histogram_bins", 64));
    return std::make_unique<BaggedTrees>(options);
  }
  if (name == "gbdt") {
    GbdtOptions options;
    options.n_rounds =
        static_cast<std::size_t>(params.get_int("gbdt.n_rounds", 100));
    options.learning_rate = params.get_double("gbdt.learning_rate", 0.1);
    options.max_depth =
        static_cast<std::size_t>(params.get_int("gbdt.max_depth", 6));
    options.max_leaves =
        static_cast<std::size_t>(params.get_int("gbdt.max_leaves", 31));
    options.min_instances_per_leaf =
        static_cast<std::size_t>(params.get_int("gbdt.min_instances", 5));
    options.row_subsample = params.get_double("gbdt.row_subsample", 1.0);
    options.feature_subsample =
        params.get_double("gbdt.feature_subsample", 1.0);
    options.histogram_bins = static_cast<std::size_t>(
        params.get_int("gbdt.histogram_bins", 64));
    const std::string bin_mode =
        params.get_string("gbdt.bin_mode", "quantile");
    if (bin_mode == "quantile") {
      options.bin_mode = BinningMode::kQuantile;
    } else if (bin_mode == "width") {
      options.bin_mode = BinningMode::kWidth;
    } else {
      throw std::invalid_argument("unknown gbdt bin mode: " + bin_mode);
    }
    options.reuse_bins = params.get_bool("gbdt.reuse_bins", true);
    const std::string base = params.get_string("gbdt.base_score", "mean");
    if (base == "mean") {
      options.base_score = GbdtOptions::BaseScore::kMean;
    } else if (base == "zero") {
      options.base_score = GbdtOptions::BaseScore::kZero;
    } else {
      throw std::invalid_argument("unknown gbdt base score: " + base);
    }
    options.early_stopping_rounds = static_cast<std::size_t>(
        params.get_int("gbdt.early_stopping_rounds", 0));
    options.validation_fraction =
        params.get_double("gbdt.validation_fraction", 0.15);
    options.seed = static_cast<std::uint64_t>(params.get_int("gbdt.seed", 1));
    options.fit_workers =
        static_cast<std::size_t>(params.get_int("gbdt.fit_workers", 0));
    return std::make_unique<GbdtRegressor>(options);
  }
  if (name == "cascade") {
    CascadeOptions options;
    options.horizon_seconds =
        params.get_double("cascade.horizon_seconds", 600.0);
    options.band_quantile = params.get_double("cascade.band_quantile", 1.0);
    options.screen_lasso_lambda =
        params.get_double("cascade.screen_lasso_lambda", 0.0);
    auto screen = make_model(params.get_string("cascade.screen", "linear"),
                             subset_config(params, "cascade.screen."));
    auto full = make_model(params.get_string("cascade.full", "reptree"),
                           subset_config(params, "cascade.full."));
    return std::make_unique<CascadeRegressor>(std::move(screen),
                                              std::move(full), options);
  }
  throw std::invalid_argument("make_model: unknown model name: " + name);
}

std::unique_ptr<Regressor> make_model(const std::string& name) {
  return make_model(name, util::Config{});
}

std::unique_ptr<Regressor> load_model_body(const std::string& tag,
                                           util::BinaryReader& reader) {
  if (tag == "linear") return LinearRegression::load(reader);
  if (tag == "ridge") return RidgeRegression::load(reader);
  if (tag == "lasso") return Lasso::load(reader);
  if (tag == "reptree") return RepTree::load(reader);
  if (tag == "m5p") return M5P::load(reader);
  if (tag == "svm") return KernelSvr::load(reader);
  if (tag == "svm2") return LsSvm::load(reader);
  if (tag == "knn") return KnnRegressor::load(reader);
  if (tag == "bagging") return BaggedTrees::load(reader);
  if (tag == "heuristic") return ExhaustionHeuristic::load(reader);
  if (tag == "cascade") return CascadeRegressor::load(reader);
  if (tag == "gbdt") return GbdtRegressor::load(reader);
  throw std::runtime_error("load_model: unknown model tag: " + tag);
}

}  // namespace f2pm::ml
