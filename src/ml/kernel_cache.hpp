// LRU kernel-row cache with a byte budget, in the style of LIBSVM's
// `Cache`: the SMO solver asks for rows of the (implicit) n x n kernel
// matrix and the cache computes them on demand with kernel_row(), keeping
// only the most recently used rows resident. Peak kernel storage is
// bounded by the configured budget (never fewer than two rows, which is
// what one SMO pair update needs at once), so training no longer
// materializes an O(n²) matrix — 800 MB at n = 10k rows under the old
// dense scheme.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/kernels.hpp"

namespace f2pm::ml {

/// Observability counters for the cache (reported by benches and exposed
/// by KernelSvr after a fit).
struct KernelCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;       ///< Rows computed on demand.
  std::size_t evictions = 0;    ///< Rows dropped to stay within budget.
  std::size_t peak_bytes = 0;   ///< High-water kernel-row storage.
  std::size_t budget_bytes = 0; ///< Configured budget.
};

/// LRU cache of kernel-matrix rows. Not thread-safe: one instance per
/// solver (row computation itself fans out over the thread pool).
class KernelRowCache {
 public:
  /// `x` must outlive the cache. At most max(2, budget_bytes / (8 n)) rows
  /// are resident at once (and never more than n).
  KernelRowCache(const KernelParams& params, const linalg::Matrix& x,
                 std::size_t budget_bytes);

  /// Row i of the kernel matrix, K(i, j) for all j. The span stays valid
  /// until i is evicted; the two most recently requested rows are always
  /// resident, so a caller may safely hold the rows of one SMO pair.
  std::span<const double> row(std::size_t i);

  /// K(i, i) for every i; precomputed, always resident.
  [[nodiscard]] std::span<const double> diagonal() const { return {diag_}; }

  /// ||x_i||² per row (shared with callers that invoke kernel_row
  /// themselves, e.g. for gradient reconstruction).
  [[nodiscard]] const std::vector<double>& row_norms() const { return norms_; }

  [[nodiscard]] std::size_t max_rows() const { return max_rows_; }
  [[nodiscard]] const KernelCacheStats& stats() const { return stats_; }

 private:
  KernelParams params_;
  const linalg::Matrix& x_;
  std::vector<double> norms_;
  std::vector<double> diag_;
  std::size_t max_rows_ = 0;

  std::vector<std::vector<double>> slots_;   ///< Row payloads (stable).
  std::vector<std::int64_t> slot_of_row_;    ///< Row -> slot, -1 if absent.
  std::vector<std::size_t> row_of_slot_;     ///< Slot -> resident row.
  std::list<std::size_t> lru_;               ///< Slots, most recent first.
  std::vector<std::list<std::size_t>::iterator> lru_pos_;  ///< Slot -> node.
  KernelCacheStats stats_;
};

}  // namespace f2pm::ml
