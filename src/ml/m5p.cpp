#include "ml/m5p.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "obs/metrics.hpp"

namespace f2pm::ml {

M5P::M5P(M5POptions options) : options_(options) {
  if (options_.min_instances < 2) {
    throw std::invalid_argument("M5P: min_instances must be >= 2");
  }
  if (options_.smoothing_k < 0.0) {
    throw std::invalid_argument("M5P: smoothing_k must be >= 0");
  }
}

std::size_t M5P::build(TreeGrowthEngine& engine, std::size_t num_features,
                       double root_sd) {
  // Explicit work stack mirroring RepTree::build: right child pushed
  // first, so the recursive preorder node numbering is reproduced without
  // unbounded call-stack depth.
  struct Task {
    TreeGrowthEngine::NodeId enode;
    std::size_t parent;
    bool is_left;
  };
  std::vector<Task> stack{{engine.root(), kNoNode, false}};
  std::size_t root_id = kNoNode;
  while (!stack.empty()) {
    const Task task = stack.back();
    stack.pop_back();
    const Moments moments = engine.moments(task.enode);
    Node node;
    node.count = moments.count;
    // Until pruning fits a proper model, the node predicts its mean.
    node.lm_coeffs.assign(num_features, 0.0);
    node.lm_intercept = moments.mean();
    const std::size_t node_id = nodes_.size();
    nodes_.push_back(std::move(node));
    if (task.parent == kNoNode) {
      root_id = node_id;
    } else if (task.is_left) {
      nodes_[task.parent].left = node_id;
    } else {
      nodes_[task.parent].right = node_id;
    }

    BestSplit split;
    // The M5 stopping rule: few instances, or target spread already small
    // relative to the whole training set.
    if (moments.count >= 2 * options_.min_instances &&
        moments.sd() >= options_.sd_fraction * root_sd) {
      split = engine.find_best_split(task.enode, options_.min_instances,
                                     SplitCriterion::kStdDevReduction,
                                     &moments);
    }
    if (!split.found) {
      engine.release(task.enode);
      continue;
    }
    const auto [left, right] = engine.apply_split(task.enode, split);
    nodes_[node_id].feature = split.feature;
    nodes_[node_id].threshold = split.threshold;
    stack.push_back({right, node_id, false});
    stack.push_back({left, node_id, true});
  }
  return root_id;
}

void M5P::fit_linear_model(Node& node, const linalg::Matrix& x,
                           std::span<const double> y,
                           const std::vector<std::size_t>& rows,
                           const std::vector<bool>& attrs) {
  node.lm_coeffs.assign(x.cols(), 0.0);
  std::vector<std::size_t> attr_idx;
  for (std::size_t a = 0; a < attrs.size(); ++a) {
    if (attrs[a]) attr_idx.push_back(a);
  }
  const Moments moments = compute_moments(y, rows);
  node.lm_intercept = moments.mean();
  if (attr_idx.empty() || rows.size() <= attr_idx.size() + 1) {
    return;  // intercept-only model
  }
  // Least squares over the referenced attributes (+ intercept), with a
  // ridge-stabilized normal-equation fallback for collinear subsets.
  linalg::Matrix design(rows.size(), attr_idx.size() + 1);
  std::vector<double> target(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto dst = design.row(i);
    for (std::size_t j = 0; j < attr_idx.size(); ++j) {
      dst[j] = x(rows[i], attr_idx[j]);
    }
    dst[attr_idx.size()] = 1.0;
    target[i] = y[rows[i]];
  }
  std::vector<double> beta;
  try {
    beta = linalg::least_squares(design, target);
  } catch (const std::runtime_error&) {
    linalg::Matrix gram = linalg::gram(design);
    const auto xty = linalg::gemv_transposed(design, target);
    beta = linalg::solve_spd(gram, xty, /*jitter=*/1e-8);
  }
  for (std::size_t j = 0; j < attr_idx.size(); ++j) {
    node.lm_coeffs[attr_idx[j]] = beta[j];
  }
  node.lm_intercept = beta[attr_idx.size()];
}

double M5P::node_predict(const Node& node, std::span<const double> row) const {
  return linalg::dot(row, node.lm_coeffs) + node.lm_intercept;
}

namespace {

/// Penalty-adjusted mean absolute error estimate, M5-style:
/// MAE * (n + v) / (n - v), where v counts the model's parameters.
double estimated_error(double mae, std::size_t n, std::size_t v,
                       double max_factor) {
  if (n == 0) return 0.0;
  double factor = max_factor;
  if (n > v) {
    factor = std::min(
        max_factor, (static_cast<double>(n) + static_cast<double>(v)) /
                        (static_cast<double>(n) - static_cast<double>(v)));
  }
  return mae * factor;
}

}  // namespace

double M5P::prune_subtree(std::size_t node_id, const linalg::Matrix& x,
                          std::span<const double> y,
                          const std::vector<std::size_t>& rows,
                          std::vector<bool>& attrs_used) {
  Node& node = nodes_[node_id];
  if (node.is_leaf()) {
    // Fit the leaf model over the attributes seen so far on the path's
    // subtree (none for a pure leaf -> mean model).
    std::vector<bool> none(x.cols(), false);
    fit_linear_model(node, x, y, rows, none);
    double mae = 0.0;
    for (std::size_t r : rows) {
      mae += std::abs(y[r] - node_predict(node, x.row(r)));
    }
    if (!rows.empty()) mae /= static_cast<double>(rows.size());
    return estimated_error(mae, rows.size(), 1, options_.max_penalty_factor);
  }

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  partition_rows(x, rows, node.feature, node.threshold, left_rows,
                 right_rows);
  std::vector<bool> subtree_attrs(x.cols(), false);
  subtree_attrs[node.feature] = true;
  const double left_err =
      prune_subtree(node.left, x, y, left_rows, subtree_attrs);
  const double right_err =
      prune_subtree(node.right, x, y, right_rows, subtree_attrs);
  const double subtree_err =
      rows.empty()
          ? 0.0
          : (left_err * static_cast<double>(left_rows.size()) +
             right_err * static_cast<double>(right_rows.size())) /
                static_cast<double>(rows.size());

  // Fit this node's model over the attributes its subtree references.
  fit_linear_model(node, x, y, rows, subtree_attrs);
  std::size_t v = 1;
  for (double c : node.lm_coeffs) v += c != 0.0 ? 1 : 0;
  double node_mae = 0.0;
  for (std::size_t r : rows) {
    node_mae += std::abs(y[r] - node_predict(node, x.row(r)));
  }
  if (!rows.empty()) node_mae /= static_cast<double>(rows.size());
  const double node_err =
      estimated_error(node_mae, rows.size(), v, options_.max_penalty_factor);

  for (std::size_t a = 0; a < subtree_attrs.size(); ++a) {
    if (subtree_attrs[a]) attrs_used[a] = true;
  }
  if (options_.prune && node_err <= subtree_err) {
    node.left = kNoNode;
    node.right = kNoNode;
    return node_err;
  }
  return subtree_err;
}

void M5P::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  static obs::Histogram& fit_hist = obs::Registry::global().histogram(
      "f2pm_ml_tree_fit_seconds",
      "Tree-learner fit wall-clock time (growth engine).",
      obs::Histogram::default_latency_bounds(), "model=\"m5p\"");
  const obs::ScopedTimer fit_timer(fit_hist);
  nodes_.clear();
  num_inputs_ = x.cols();

  std::vector<std::size_t> all_rows(x.rows());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  TreeGrowthEngine::Config engine_config;
  engine_config.mode = options_.split_mode;
  engine_config.histogram_bins = options_.histogram_bins;
  engine_config.min_split_size = 2 * options_.min_instances;
  TreeGrowthEngine engine(x, y, all_rows, engine_config);
  const double root_sd = engine.moments(engine.root()).sd();
  root_ = build(engine, x.cols(), root_sd);
  std::vector<bool> attrs_used(x.cols(), false);
  prune_subtree(root_, x, y, all_rows, attrs_used);
  fitted_ = true;
}

double M5P::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  // Descend, recording the path for smoothing.
  std::vector<std::size_t> path;
  std::size_t node_id = root_;
  path.push_back(node_id);
  while (!nodes_[node_id].is_leaf()) {
    const Node& node = nodes_[node_id];
    node_id = row[node.feature] <= node.threshold ? node.left : node.right;
    path.push_back(node_id);
  }
  double prediction = node_predict(nodes_[node_id], row);
  if (!options_.smoothing) return prediction;
  // Smooth back up: p' = (n·p + k·q) / (n + k), n = rows at the child we
  // came from, q = the parent model's prediction.
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    const Node& parent = nodes_[path[i]];
    const Node& child = nodes_[path[i + 1]];
    const double n = static_cast<double>(child.count);
    const double q = node_predict(parent, row);
    prediction = (n * prediction + options_.smoothing_k * q) /
                 (n + options_.smoothing_k);
  }
  return prediction;
}

std::vector<double> M5P::predict(const linalg::Matrix& x) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  std::vector<double> out(x.rows());
  std::vector<std::size_t> path;  // reused across rows
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    path.clear();
    std::size_t node_id = root_;
    path.push_back(node_id);
    while (!nodes_[node_id].is_leaf()) {
      const Node& node = nodes_[node_id];
      node_id = row[node.feature] <= node.threshold ? node.left : node.right;
      path.push_back(node_id);
    }
    double prediction = node_predict(nodes_[node_id], row);
    if (options_.smoothing) {
      // Identical smoothing recurrence to predict_row, so batched and
      // row-by-row predictions agree bit-for-bit.
      for (std::size_t i = path.size() - 1; i-- > 0;) {
        const Node& parent = nodes_[path[i]];
        const Node& child = nodes_[path[i + 1]];
        const double n = static_cast<double>(child.count);
        const double q = node_predict(parent, row);
        prediction = (n * prediction + options_.smoothing_k * q) /
                     (n + options_.smoothing_k);
      }
    }
    out[r] = prediction;
  }
  return out;
}

std::size_t M5P::num_leaves() const {
  if (root_ == kNoNode) return 0;
  std::size_t count = 0;
  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    if (nodes_[id].is_leaf()) {
      ++count;
    } else {
      stack.push_back(nodes_[id].left);
      stack.push_back(nodes_[id].right);
    }
  }
  return count;
}

void M5P::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("M5P::save before fit");
  writer.write_u64(num_inputs_);
  writer.write_bool(options_.smoothing);
  writer.write_double(options_.smoothing_k);
  // Preorder emit of reachable nodes with renumbered links (mirrors
  // RepTree::save; pruned nodes are dropped).
  std::vector<std::uint64_t> features;
  std::vector<double> thresholds;
  std::vector<std::uint64_t> counts;
  std::vector<double> intercepts;
  std::vector<std::uint64_t> lefts;
  std::vector<std::uint64_t> rights;
  std::vector<double> coeff_blob;
  struct Frame {
    std::size_t node;
    std::size_t parent_slot;
    bool is_left;
  };
  std::vector<Frame> stack{{root_, kNoNode, false}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    const std::size_t new_id = features.size();
    if (frame.parent_slot != kNoNode) {
      (frame.is_left ? lefts : rights)[frame.parent_slot] = new_id;
    }
    features.push_back(node.feature);
    thresholds.push_back(node.threshold);
    counts.push_back(node.count);
    intercepts.push_back(node.lm_intercept);
    coeff_blob.insert(coeff_blob.end(), node.lm_coeffs.begin(),
                      node.lm_coeffs.end());
    lefts.push_back(kNoNode);
    rights.push_back(kNoNode);
    if (!node.is_leaf()) {
      stack.push_back({node.right, new_id, false});
      stack.push_back({node.left, new_id, true});
    }
  }
  writer.write_u64s(features);
  writer.write_doubles(thresholds);
  writer.write_u64s(counts);
  writer.write_doubles(intercepts);
  writer.write_u64s(lefts);
  writer.write_u64s(rights);
  writer.write_doubles(coeff_blob);
}

std::unique_ptr<M5P> M5P::load(util::BinaryReader& reader) {
  M5POptions options;
  auto model = std::make_unique<M5P>(options);
  model->num_inputs_ = reader.read_u64();
  model->options_.smoothing = reader.read_bool();
  model->options_.smoothing_k = reader.read_double();
  const auto features = reader.read_u64s();
  const auto thresholds = reader.read_doubles();
  const auto counts = reader.read_u64s();
  const auto intercepts = reader.read_doubles();
  const auto lefts = reader.read_u64s();
  const auto rights = reader.read_u64s();
  const auto coeff_blob = reader.read_doubles();
  const std::size_t count = features.size();
  const std::size_t width = model->num_inputs_;
  if (thresholds.size() != count || counts.size() != count ||
      intercepts.size() != count || lefts.size() != count ||
      rights.size() != count || coeff_blob.size() != count * width ||
      count == 0) {
    throw std::runtime_error("M5P::load: inconsistent archive");
  }
  model->nodes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node& node = model->nodes_[i];
    node.feature = features[i];
    node.threshold = thresholds[i];
    node.count = counts[i];
    node.lm_intercept = intercepts[i];
    node.lm_coeffs.assign(coeff_blob.begin() + i * width,
                          coeff_blob.begin() + (i + 1) * width);
    node.left = lefts[i];
    node.right = rights[i];
    const bool left_leaf = node.left == kNoNode;
    const bool right_leaf = node.right == kNoNode;
    if (left_leaf != right_leaf ||
        (!left_leaf && (node.left >= count || node.right >= count))) {
      throw std::runtime_error("M5P::load: corrupt tree links");
    }
  }
  model->root_ = 0;
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
