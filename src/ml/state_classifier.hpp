// The related-work baseline the paper positions itself against (§II,
// ref. [12] Alonso/Belanche/Avresky, NCA 2011): instead of estimating the
// RTTF, classify the system's life into three states — "all ok",
// "warning", "danger" — with an ML classifier over the same system
// features. Reimplemented here so the paper's argument ("we are able to
// generate models to precisely estimate the RTTF" vs. state-only
// prediction) can be evaluated head-to-head (bench/baseline_comparison).
//
// The classifier is a CART-style decision tree with Gini-impurity splits
// and depth/leaf-size pre-pruning.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"

namespace f2pm::ml {

/// The three system states of [12].
enum class SystemState : int { kAllOk = 0, kWarning = 1, kDanger = 2 };

inline constexpr std::size_t kNumStates = 3;

std::string_view state_name(SystemState state) noexcept;

/// RTTF-to-state labeling rule: danger below `danger_seconds`, warning
/// below `warning_seconds`, all-ok otherwise.
struct StateThresholds {
  double danger_seconds = 300.0;
  double warning_seconds = 900.0;
};

/// Maps an RTTF to its state label.
SystemState state_from_rttf(double rttf, const StateThresholds& thresholds);

/// Labels a whole RTTF vector.
std::vector<SystemState> states_from_rttf(std::span<const double> rttf,
                                          const StateThresholds& thresholds);

/// Decision-tree classifier hyperparameters.
struct StateClassifierOptions {
  std::size_t min_instances_per_leaf = 5;
  std::size_t max_depth = 12;  ///< 0 = unlimited.
};

/// Gini-split decision tree over the three states.
class StateClassifierTree {
 public:
  explicit StateClassifierTree(StateClassifierOptions options = {});

  /// Trains on a design matrix and per-row state labels. Throws
  /// std::invalid_argument on shape mismatch or an empty training set.
  void fit(const linalg::Matrix& x, std::span<const SystemState> labels);

  /// Predicts the state of one row. Requires is_fitted().
  [[nodiscard]] SystemState predict_row(std::span<const double> row) const;

  /// Batch prediction.
  [[nodiscard]] std::vector<SystemState> predict(
      const linalg::Matrix& x) const;

  [[nodiscard]] bool is_fitted() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t num_leaves() const;

 private:
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = SIZE_MAX;
    std::size_t right = SIZE_MAX;
    SystemState majority = SystemState::kAllOk;

    [[nodiscard]] bool is_leaf() const { return left == SIZE_MAX; }
  };

  std::size_t build(const linalg::Matrix& x,
                    std::span<const SystemState> labels,
                    const std::vector<std::size_t>& rows, std::size_t depth);

  StateClassifierOptions options_;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
  std::size_t num_inputs_ = 0;
};

/// Classification quality summary.
struct ClassificationReport {
  double accuracy = 0.0;
  /// confusion[actual][predicted].
  std::array<std::array<std::size_t, kNumStates>, kNumStates> confusion{};
  /// Recall of the danger class — the number that matters for proactive
  /// rejuvenation (a missed danger is a crash).
  double danger_recall = 0.0;
};

/// Scores predictions against truth. Throws on size mismatch/empty.
ClassificationReport evaluate_classification(
    std::span<const SystemState> predicted,
    std::span<const SystemState> actual);

}  // namespace f2pm::ml
