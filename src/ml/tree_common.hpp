// Machinery shared by the tree learners (REP-Tree, M5P, bagged ensembles):
// flat node storage (index-linked, serialization-friendly), the naive
// exhaustive split search kept as the equivalence reference, and the
// presort/histogram tree-growth engine the learners actually train with.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/serialization.hpp"

namespace f2pm::ml {

/// Sentinel for "no child".
inline constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

/// How candidate splits are scored.
enum class SplitCriterion {
  kVarianceReduction,  ///< Minimize total SSE of the two children (REP-Tree).
  kStdDevReduction,    ///< Maximize SDR = sd(S) - Σ w_i sd(S_i) (M5/M5P).
};

/// How the growth engine finds candidate splits.
enum class SplitMode {
  /// Per-feature row orders presorted once at the root and maintained down
  /// the tree by stable partition: O(F·n) per level, zero per-node sorts,
  /// node-for-node identical trees to the naive reference.
  kPresort,
  /// Fixed-width bins with the sibling-subtraction trick: O(F·bins) split
  /// scans independent of node size. Approximate (thresholds land on bin
  /// boundaries); wins for large n and deep trees.
  kHistogram,
  /// The retained seed algorithm (per-node stable sort of every feature).
  /// Kept for the equivalence suite and as the benchmark baseline.
  kNaive,
};

/// How histogram bin edges are chosen.
enum class BinningMode {
  kWidth,     ///< Fixed-width bins over [min, max] (the PR 4 scheme).
  kQuantile,  ///< Equal-frequency edges from the sorted per-feature values.
};

/// Precomputed per-feature histogram binning: per-row bin ids plus the
/// per-(feature, bin) value bounds the split scan derives thresholds from.
/// Computing this is the O(F·n) (kWidth) or O(F·n·log n) (kQuantile) part
/// of a histogram fit, and it depends only on the matrix content — boosted
/// ensembles and cross-validation folds share one instance across every
/// tree and grid point fit on the same matrix.
struct FeatureBinning {
  std::size_t bins = 0;          ///< Bins per feature.
  std::size_t num_rows = 0;      ///< x.rows() of the binned matrix.
  std::size_t num_features = 0;  ///< x.cols() of the binned matrix.
  std::vector<std::uint16_t> bin_of;  ///< Bin id, indexed f * num_rows + r.
  std::vector<double> bin_lo;         ///< Min value seen, f * bins + b.
  std::vector<double> bin_hi;         ///< Max value seen, f * bins + b.
};

/// Computes the binning over `rows` of `x` (bin ids of rows outside `rows`
/// stay 0 and their values never widen the bounds). kWidth reproduces
/// bit-for-bit the fixed-width binning TreeGrowthEngine computes for itself
/// when no precomputed binning is supplied. A binning over a superset of
/// the rows later fit on is exact to reuse: bins are monotone in value and
/// equal values share a bin, so every derived threshold still partitions
/// any row subset exactly as its histogram counts assume.
FeatureBinning compute_feature_binning(const linalg::Matrix& x,
                                       const std::vector<std::size_t>& rows,
                                       std::size_t bins, BinningMode mode);

/// The best split found for a node, if any.
struct BestSplit {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;  ///< Rows with value <= threshold go left.
  double score = 0.0;      ///< SSE saved (variance mode) or SDR (sd mode).
};

/// Exhaustive best-split search over all features for the given rows.
/// Candidate thresholds are midpoints between consecutive distinct values;
/// splits leaving fewer than `min_leaf` rows on either side are rejected.
///
/// This is the seed implementation, retained verbatim (modulo the stable
/// sort that pins the tie order) as the reference the presort engine must
/// match node-for-node. Production fits go through TreeGrowthEngine.
BestSplit find_best_split(const linalg::Matrix& x, std::span<const double> y,
                          const std::vector<std::size_t>& rows,
                          std::size_t min_leaf, SplitCriterion criterion);

/// Sum, sum-of-squares and count for a row subset of y (split bookkeeping).
struct Moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t count = 0;

  void add(double v) {
    sum += v;
    sum_sq += v * v;
    ++count;
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Total squared error around the mean.
  [[nodiscard]] double sse() const {
    if (count == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(count);
  }
  /// Population standard deviation.
  [[nodiscard]] double sd() const;
};

/// Moments of a row subset.
Moments compute_moments(std::span<const double> y,
                        const std::vector<std::size_t>& rows);

/// Partitions `rows` on x(row, feature) <= threshold, preserving order.
void partition_rows(const linalg::Matrix& x,
                    const std::vector<std::size_t>& rows, std::size_t feature,
                    double threshold, std::vector<std::size_t>& left,
                    std::vector<std::size_t>& right);

/// Shared tree-growth engine.
///
/// Owns the row bookkeeping for one fit: the training rows of every tree
/// node are contiguous segments of one index array, plus (presort mode) one
/// value-sorted index array per feature, all maintained down the tree by a
/// stable partition over a membership mark buffer. Splitting a node costs
/// O((F+1)·node_size) with zero sorts and zero allocations; a best-split
/// scan costs O(F·node_size) (presort) or O(F·bins) (histogram), and fans
/// the per-feature scans across the global thread pool for large nodes.
/// All results are bitwise independent of the thread count: per-feature
/// scans are self-contained and the cross-feature reduction always runs in
/// feature order.
///
/// In kPresort mode the engine produces node-for-node identical trees to
/// find_best_split() above: the root presort is stable (ties keep the
/// caller's row order, exactly like the reference's stable per-node sort),
/// stable partition preserves that order down the tree, and the scan
/// accumulates child moments in the same order as the reference, so even
/// the floating-point sums are bit-identical.
class TreeGrowthEngine {
 public:
  using NodeId = std::size_t;

  struct Config {
    SplitMode mode = SplitMode::kPresort;
    /// Fixed-width bins per feature (histogram mode).
    std::size_t histogram_bins = 64;
    /// Minimum node_size · num_features before a split scan fans out on
    /// the global thread pool; below it the scan runs inline.
    std::size_t parallel_min_work = std::size_t{1} << 14;
    /// Master switch for the parallel split scan (results are identical
    /// either way; the switch exists for benchmarking).
    bool allow_parallel = true;
    /// Smallest node size find_best_split will ever be called with (tree
    /// builders pass 2 * their min-instances-per-leaf). apply_split skips
    /// maintaining the per-feature slices when both children fall below
    /// it — they can never be scanned, so their slices are never read.
    /// Must not exceed 2 * min_leaf of any later find_best_split call.
    std::size_t min_split_size = 2;
    /// Precomputed binning to share across fits (histogram mode only).
    /// Must match the matrix (num_rows/num_features) and histogram_bins;
    /// when null the engine computes fixed-width binning over its root
    /// rows, exactly as before.
    std::shared_ptr<const FeatureBinning> binning;
    /// Per-feature activity mask for feature subsampling (empty = all
    /// active). Inactive features are never scanned for splits; honored in
    /// presort and histogram modes.
    std::vector<std::uint8_t> feature_active;
  };

  /// Takes the root row set by value; its order is the canonical row order
  /// every node segment and moment accumulation preserves.
  TreeGrowthEngine(const linalg::Matrix& x, std::span<const double> y,
                   std::vector<std::size_t> rows, Config config);
  /// Default configuration (kPresort, parallel scans enabled).
  TreeGrowthEngine(const linalg::Matrix& x, std::span<const double> y,
                   std::vector<std::size_t> rows)
      : TreeGrowthEngine(x, y, std::move(rows), Config()) {}

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }

  /// The node's training rows, in the caller's original relative order.
  [[nodiscard]] std::span<const std::size_t> rows(NodeId id) const;
  [[nodiscard]] std::size_t node_size(NodeId id) const;

  /// Target moments of the node, accumulated in rows(id) order (bit-exact
  /// match with compute_moments over the same rows).
  [[nodiscard]] Moments moments(NodeId id) const;

  /// Best split over all features for the node, matching the semantics of
  /// the free find_best_split (first feature/threshold achieving a strictly
  /// greater positive score wins). Callers that already computed the node's
  /// moments (tree builders always do, for the leaf value) can pass them to
  /// skip the recomputation; `total` must equal moments(id).
  [[nodiscard]] BestSplit find_best_split(NodeId id, std::size_t min_leaf,
                                          SplitCriterion criterion,
                                          const Moments* total = nullptr);

  /// Partitions the node on the split and returns {left, right} children.
  /// The split must have been produced for this node.
  std::pair<NodeId, NodeId> apply_split(NodeId id, const BestSplit& split);

  /// Declares the node a leaf: frees its cached histogram (no-op in the
  /// other modes). Optional — bounds histogram-mode memory to O(depth).
  void release(NodeId id);

 private:
  struct Segment {
    std::size_t begin = 0;
    std::size_t end = 0;
    /// Per-feature ping-pong parity: bit f = which buffer holds feature
    /// f's slices (features >= 64 share bit via buf_hi_ semantics below).
    /// A split flips the bit of every feature it actually partitions; the
    /// split feature itself is never moved — its slice is sorted, so its
    /// children are exactly the prefix and suffix in place.
    std::uint64_t buf_mask = 0;
    /// Parity shared by all features >= 64 (those are always partitioned).
    std::uint8_t buf_hi = 0;
    /// Features (< 64) known constant within the node. Constancy is
    /// inherited, so a marked feature is never scanned or partitioned
    /// again anywhere in the subtree — its stale slice is never read.
    std::uint64_t const_mask = 0;
  };

  /// Which ping-pong buffer holds `feature`'s slices for the segment.
  [[nodiscard]] std::size_t buf_of(std::size_t feature,
                                   const Segment& segment) const {
    return feature < 64 ? (segment.buf_mask >> feature) & 1 : segment.buf_hi;
  }

  /// Whether the feature participates in split scans (subsampling mask).
  [[nodiscard]] bool feature_enabled(std::size_t feature) const {
    return config_.feature_active.empty() ||
           config_.feature_active[feature] != 0;
  }

  [[nodiscard]] std::span<const std::uint32_t> order_slice(
      std::size_t feature, const Segment& segment) const;
  [[nodiscard]] std::span<const double> xval_slice(
      std::size_t feature, const Segment& segment) const;
  [[nodiscard]] std::span<const double> yval_slice(
      std::size_t feature, const Segment& segment) const;

  /// Per-feature presorted scan over one node segment; exact reference
  /// semantics.
  [[nodiscard]] BestSplit scan_feature_presorted(
      std::size_t feature, const Segment& segment, const Moments& total,
      std::size_t min_leaf, SplitCriterion criterion) const;

  /// Histogram-mode per-feature scan.
  [[nodiscard]] BestSplit scan_feature_histogram(
      std::size_t feature, std::span<const double> hist, const Moments& total,
      std::size_t min_leaf, SplitCriterion criterion) const;

  void build_histogram(NodeId id);
  void accumulate_histogram(const Segment& segment,
                            std::span<double> hist) const;

  const linalg::Matrix& x_;
  std::span<const double> y_;
  Config config_;
  std::size_t num_features_ = 0;

  std::vector<std::size_t> rows_;  ///< Original-order rows, per segment.
  std::vector<double> yrows_;      ///< y in rows_ order (streamed moments).
  // Per-feature row order (32-bit row ids) plus the x/y values in that
  // order, partitioned in lockstep so the split scan streams contiguous
  // arrays instead of gathering from the row-major matrix. Two ping-pong
  // copies: a split partitions a node's slices out of one buffer into the
  // other in a single pass (per-feature parity in Segment::buf_mask),
  // with no spill buffer and no copy-back. Raw arrays (not vectors) so the
  // spill-side buffer is never zero-initialized — it is write-before-read
  // by construction.
  std::array<std::unique_ptr<std::uint32_t[]>, 2> order_;
  std::array<std::unique_ptr<double[]>, 2> xval_;
  std::array<std::unique_ptr<double[]>, 2> yval_;
  std::vector<Segment> segments_;   ///< Indexed by NodeId.
  std::vector<unsigned char> mark_;   ///< Left-membership flags by row id.
  std::vector<std::size_t> scratch_;  ///< rows_ stable-partition spill.
  std::vector<double> scratch_y_;     ///< yrows_ spill, in lockstep.

  // Histogram mode: per-row bin ids plus per-(feature, bin) value bounds —
  // either the caller's shared precomputed binning or one computed at the
  // root; per-node histograms of (sum, sum_sq, count) triples, children
  // derived by sibling subtraction.
  std::shared_ptr<const FeatureBinning> binning_;
  std::vector<std::vector<double>> hists_;  ///< Indexed by NodeId.
};

}  // namespace f2pm::ml
