// Machinery shared by the two tree learners (REP-Tree, M5P): flat node
// storage (index-linked, serialization-friendly) and exhaustive numeric
// split search over a row subset.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/serialization.hpp"

namespace f2pm::ml {

/// Sentinel for "no child".
inline constexpr std::size_t kNoNode = std::numeric_limits<std::size_t>::max();

/// How candidate splits are scored.
enum class SplitCriterion {
  kVarianceReduction,  ///< Minimize total SSE of the two children (REP-Tree).
  kStdDevReduction,    ///< Maximize SDR = sd(S) - Σ w_i sd(S_i) (M5/M5P).
};

/// The best split found for a node, if any.
struct BestSplit {
  bool found = false;
  std::size_t feature = 0;
  double threshold = 0.0;  ///< Rows with value <= threshold go left.
  double score = 0.0;      ///< SSE saved (variance mode) or SDR (sd mode).
};

/// Exhaustive best-split search over all features for the given rows.
/// Candidate thresholds are midpoints between consecutive distinct values;
/// splits leaving fewer than `min_leaf` rows on either side are rejected.
BestSplit find_best_split(const linalg::Matrix& x, std::span<const double> y,
                          const std::vector<std::size_t>& rows,
                          std::size_t min_leaf, SplitCriterion criterion);

/// Sum, sum-of-squares and count for a row subset of y (split bookkeeping).
struct Moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t count = 0;

  void add(double v) {
    sum += v;
    sum_sq += v * v;
    ++count;
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Total squared error around the mean.
  [[nodiscard]] double sse() const {
    if (count == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(count);
  }
  /// Population standard deviation.
  [[nodiscard]] double sd() const;
};

/// Moments of a row subset.
Moments compute_moments(std::span<const double> y,
                        const std::vector<std::size_t>& rows);

/// Partitions `rows` on x(row, feature) <= threshold, preserving order.
void partition_rows(const linalg::Matrix& x,
                    const std::vector<std::size_t>& rows, std::size_t feature,
                    double threshold, std::vector<std::size_t>& left,
                    std::vector<std::size_t>& right);

}  // namespace f2pm::ml
