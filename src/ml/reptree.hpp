// REP-Tree (paper §III-D): a fast regression tree grown with variance
// reduction and pruned with Reduced-Error Pruning against a held-out prune
// split, with backfitting of leaf values.
//
// Following the WEKA learner the paper used, the training data is split
// internally into a grow set and a prune set (1/numFolds of the data,
// default 3 folds -> one third for pruning). The tree is grown greedily on
// the grow set, then every internal node whose subtree does not beat the
// node-as-leaf squared error on the prune set is collapsed. Finally leaf
// predictions are backfitted: re-estimated from grow + prune rows together.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/model.hpp"
#include "ml/tree_common.hpp"

namespace f2pm::ml {

/// REP-Tree hyperparameters (WEKA defaults where applicable).
struct RepTreeOptions {
  std::size_t min_instances_per_leaf = 2;  ///< WEKA -M 2.
  std::size_t max_depth = 0;               ///< 0 = unlimited (WEKA -L -1).
  std::size_t num_folds = 3;               ///< 1/num_folds held out to prune.
  bool prune = true;                       ///< Disable for a fully grown tree.
  /// Minimum proportion of the root variance a node must retain to be
  /// split further (WEKA's minVarianceProp, default 1e-3).
  double min_variance_proportion = 1e-3;
  std::uint64_t seed = 1;                  ///< Grow/prune shuffle seed.
  /// Split-search engine. kPresort (default) grows node-for-node identical
  /// trees to kNaive at a fraction of the cost; kHistogram trades exact
  /// thresholds for O(bins) split scans on large n.
  SplitMode split_mode = SplitMode::kPresort;
  std::size_t histogram_bins = 64;  ///< Bins per feature (kHistogram).
};

/// Regression REP-Tree.
class RepTree final : public Regressor {
 public:
  explicit RepTree(RepTreeOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction: one tight traversal loop over the flat node array
  /// for the whole matrix (exactly matches predict_row per row).
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "reptree"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<RepTree> load(util::BinaryReader& reader);

  [[nodiscard]] const RepTreeOptions& options() const { return options_; }

  /// Diagnostics: node/leaf counts and depth of the fitted tree.
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_leaves() const;
  [[nodiscard]] std::size_t depth() const;

  /// Split-gain feature importances: for each input column, the total
  /// training-SSE reduction attributed to splits on it in the final
  /// (pruned) tree, normalized to sum to 1 (all-zero when the tree is a
  /// single leaf). An independent, model-based counterpart to the Lasso
  /// feature selection of §III-C.
  [[nodiscard]] const std::vector<double>& feature_importances() const {
    return importances_;
  }

 private:
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = kNoNode;
    std::size_t right = kNoNode;
    double value = 0.0;        ///< Prediction when used as a leaf.
    double grow_count = 0.0;   ///< Grow-set rows that reached the node.

    [[nodiscard]] bool is_leaf() const { return left == kNoNode; }
  };

  /// Grows the tree from the engine's root node with an explicit work
  /// stack (preorder node ids, no call-stack recursion) and returns the
  /// root id.
  std::size_t build(TreeGrowthEngine& engine, double root_variance);
  /// Returns the prune-set SSE of the subtree; collapses nodes where the
  /// node-as-leaf SSE is no worse. Explicit-stack post-order traversal.
  double prune_subtree(std::size_t node_id, const linalg::Matrix& x,
                       std::span<const double> y,
                       const std::vector<std::size_t>& prune_rows);
  /// One post-order walk of the final tree with the full training data
  /// that both backfits node values (WEKA's re-estimation from grow +
  /// prune rows; skipped when `update_values` is false) and accumulates
  /// the per-feature SSE reductions into importances_ — the two passes
  /// partition the same rows down the same tree, so they are fused.
  void backfit_and_importances(std::size_t node_id, const linalg::Matrix& x,
                               std::span<const double> y,
                               const std::vector<std::size_t>& rows,
                               bool update_values);
  [[nodiscard]] std::size_t subtree_depth(std::size_t node_id) const;

  RepTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  std::size_t root_ = kNoNode;
  std::size_t num_inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
