#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace f2pm::ml {

KnnRegressor::KnnRegressor(KnnOptions options) : options_(options) {
  if (options_.k == 0) {
    throw std::invalid_argument("KnnRegressor: k must be > 0");
  }
}

void KnnRegressor::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  num_inputs_ = x.cols();
  input_scaler_ = data::Standardizer::fit(x);
  train_x_ = input_scaler_.transform(x);
  train_y_.assign(y.begin(), y.end());
  fitted_ = true;
}

double KnnRegressor::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  std::vector<double> scaled(row.size());
  const auto& means = input_scaler_.means();
  const auto& scales = input_scaler_.scales();
  for (std::size_t c = 0; c < row.size(); ++c) {
    scaled[c] = (row[c] - means[c]) / scales[c];
  }
  const std::size_t n = train_x_.rows();
  const std::size_t k = std::min(options_.k, n);
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto train_row = train_x_.row(i);
    double d = 0.0;
    for (std::size_t c = 0; c < scaled.size(); ++c) {
      const double diff = train_row[c] - scaled[c];
      d += diff * diff;
    }
    dist[i] = {d, i};
  }
  std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());
  double weight_sum = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto [d, idx] = dist[i];
    const double w =
        options_.distance_weighted ? 1.0 / (std::sqrt(d) + 1e-9) : 1.0;
    weight_sum += w;
    value += w * train_y_[idx];
  }
  return value / weight_sum;
}

void KnnRegressor::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("KnnRegressor::save before fit");
  writer.write_u64(options_.k);
  writer.write_bool(options_.distance_weighted);
  writer.write_u64(num_inputs_);
  writer.write_u64(train_x_.rows());
  for (std::size_t r = 0; r < train_x_.rows(); ++r) {
    const auto row = train_x_.row(r);
    writer.write_doubles(std::vector<double>(row.begin(), row.end()));
  }
  writer.write_doubles(train_y_);
  writer.write_doubles(input_scaler_.means());
  writer.write_doubles(input_scaler_.scales());
}

std::unique_ptr<KnnRegressor> KnnRegressor::load(util::BinaryReader& reader) {
  KnnOptions options;
  options.k = reader.read_u64();
  options.distance_weighted = reader.read_bool();
  auto model = std::make_unique<KnnRegressor>(options);
  model->num_inputs_ = reader.read_u64();
  const std::uint64_t rows = reader.read_u64();
  model->train_x_ = linalg::Matrix(rows, model->num_inputs_);
  for (std::uint64_t r = 0; r < rows; ++r) {
    const auto row = reader.read_doubles();
    if (row.size() != model->num_inputs_) {
      throw std::runtime_error("KnnRegressor::load: bad row width");
    }
    std::copy(row.begin(), row.end(), model->train_x_.row(r).begin());
  }
  model->train_y_ = reader.read_doubles();
  if (model->train_y_.size() != rows) {
    throw std::runtime_error("KnnRegressor::load: inconsistent archive");
  }
  const auto means = reader.read_doubles();
  const auto scales = reader.read_doubles();
  if (means.size() != model->num_inputs_ ||
      scales.size() != model->num_inputs_) {
    throw std::runtime_error("KnnRegressor::load: bad scaler data");
  }
  model->input_scaler_ = data::Standardizer::from_moments(means, scales);
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
