#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "linalg/blas.hpp"

namespace f2pm::ml {

namespace {

/// Inverse-distance weighted average of the k nearest entries of `dist`
/// (first k after nth_element), shared by the row-wise and batched paths.
double weighted_knn_value(std::vector<std::pair<double, std::size_t>>& dist,
                          std::size_t k, bool distance_weighted,
                          std::span<const double> train_y) {
  std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());
  double weight_sum = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto [d, idx] = dist[i];
    const double w = distance_weighted ? 1.0 / (std::sqrt(d) + 1e-9) : 1.0;
    weight_sum += w;
    value += w * train_y[idx];
  }
  return value / weight_sum;
}

std::vector<double> row_norms(const linalg::Matrix& m) {
  std::vector<double> norms(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    norms[r] = linalg::dot(m.row(r), m.row(r));
  }
  return norms;
}

}  // namespace

KnnRegressor::KnnRegressor(KnnOptions options) : options_(options) {
  if (options_.k == 0) {
    throw std::invalid_argument("KnnRegressor: k must be > 0");
  }
}

void KnnRegressor::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  num_inputs_ = x.cols();
  input_scaler_ = data::Standardizer::fit(x);
  train_x_ = input_scaler_.transform(x);
  train_norms_ = row_norms(train_x_);
  train_y_.assign(y.begin(), y.end());
  fitted_ = true;
}

double KnnRegressor::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  std::vector<double> scaled(row.size());
  const auto& means = input_scaler_.means();
  const auto& scales = input_scaler_.scales();
  for (std::size_t c = 0; c < row.size(); ++c) {
    scaled[c] = (row[c] - means[c]) / scales[c];
  }
  const std::size_t n = train_x_.rows();
  const std::size_t k = std::min(options_.k, n);
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto train_row = train_x_.row(i);
    double d = 0.0;
    for (std::size_t c = 0; c < scaled.size(); ++c) {
      const double diff = train_row[c] - scaled[c];
      d += diff * diff;
    }
    dist[i] = {d, i};
  }
  return weighted_knn_value(dist, k, options_.distance_weighted, train_y_);
}

std::vector<double> KnnRegressor::predict(const linalg::Matrix& x) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  const std::size_t n = train_x_.rows();
  const std::size_t k = std::min(options_.k, n);
  const linalg::Matrix queries = input_scaler_.transform(x);
  const std::vector<double> query_norms = row_norms(queries);

  // Query blocks bound the cross-term scratch to kBlock x n doubles while
  // keeping each product large enough to amortize the kernel dispatch.
  constexpr std::size_t kBlock = 128;
  std::vector<double> out(x.rows());
  std::vector<std::pair<double, std::size_t>> dist(n);  // reused scratch
  linalg::Matrix cross;
  for (std::size_t begin = 0; begin < queries.rows(); begin += kBlock) {
    const std::size_t end = std::min(queries.rows(), begin + kBlock);
    if (cross.rows() != end - begin) {
      cross = linalg::Matrix(end - begin, n);
    }
    linalg::gemm_nt_block(queries, begin, end, train_x_, cross);
    for (std::size_t q = begin; q < end; ++q) {
      const double qn = query_norms[q];
      const auto g = cross.row(q - begin);
      for (std::size_t i = 0; i < n; ++i) {
        // Clamp: rounding can push the identity slightly negative.
        const double d = qn + train_norms_[i] - 2.0 * g[i];
        dist[i] = {d > 0.0 ? d : 0.0, i};
      }
      out[q] = weighted_knn_value(dist, k, options_.distance_weighted,
                                  train_y_);
    }
  }
  return out;
}

void KnnRegressor::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("KnnRegressor::save before fit");
  writer.write_u64(options_.k);
  writer.write_bool(options_.distance_weighted);
  writer.write_u64(num_inputs_);
  writer.write_u64(train_x_.rows());
  // One contiguous field for the whole training matrix (row-major); older
  // archives stored one double[] field per row — load() accepts both.
  writer.write_doubles(train_x_.data());
  writer.write_doubles(train_y_);
  writer.write_doubles(input_scaler_.means());
  writer.write_doubles(input_scaler_.scales());
}

std::unique_ptr<KnnRegressor> KnnRegressor::load(util::BinaryReader& reader) {
  KnnOptions options;
  options.k = reader.read_u64();
  options.distance_weighted = reader.read_bool();
  auto model = std::make_unique<KnnRegressor>(options);
  model->num_inputs_ = reader.read_u64();
  const std::uint64_t rows = reader.read_u64();
  model->train_x_ = linalg::Matrix(rows, model->num_inputs_);
  // Format shim: the first double[] field is either the whole row-major
  // matrix (current format) or just row 0 (legacy per-row format). The two
  // coincide harmlessly when rows == 1.
  const auto first = reader.read_doubles();
  if (first.size() == rows * model->num_inputs_) {
    std::copy(first.begin(), first.end(), model->train_x_.data().begin());
  } else if (first.size() == model->num_inputs_ && rows > 0) {
    std::copy(first.begin(), first.end(), model->train_x_.row(0).begin());
    for (std::uint64_t r = 1; r < rows; ++r) {
      const auto row = reader.read_doubles();
      if (row.size() != model->num_inputs_) {
        throw std::runtime_error("KnnRegressor::load: bad row width");
      }
      std::copy(row.begin(), row.end(), model->train_x_.row(r).begin());
    }
  } else {
    throw std::runtime_error("KnnRegressor::load: bad training matrix field");
  }
  model->train_norms_ = row_norms(model->train_x_);
  model->train_y_ = reader.read_doubles();
  if (model->train_y_.size() != rows) {
    throw std::runtime_error("KnnRegressor::load: inconsistent archive");
  }
  const auto means = reader.read_doubles();
  const auto scales = reader.read_doubles();
  if (means.size() != model->num_inputs_ ||
      scales.size() != model->num_inputs_) {
    throw std::runtime_error("KnnRegressor::load: bad scaler data");
  }
  model->input_scaler_ = data::Standardizer::from_moments(means, scales);
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
