// Least-Squares SVM regression (paper §III-D "SVM2"), after Suykens &
// Vandewalle: the inequality constraints of Vapnik's formulation (Eq. 4)
// are replaced by equality constraints with squared slack, so training
// reduces to one dense linear system
//
//   [ 0   1ᵀ          ] [ b ]   [ 0 ]
//   [ 1   K + I/γ     ] [ α ] = [ y ]
//
// solved here by LU with partial pivoting (the system is symmetric but
// indefinite, so Cholesky does not apply). Every training point becomes a
// support vector — the price LS-SVM pays for its closed form.
#pragma once

#include <vector>

#include "data/standardizer.hpp"
#include "ml/kernels.hpp"
#include "ml/model.hpp"

namespace f2pm::ml {

/// LS-SVM hyperparameters. Kernel defaults match the SVR's WEKA-like RBF.
struct LsSvmOptions {
  KernelParams kernel{.type = KernelType::kRbf, .gamma = 0.01};
  double gamma = 2.0;   ///< Regularization (larger = closer fit).
};

/// Least-squares SVM regressor.
class LsSvm final : public Regressor {
 public:
  explicit LsSvm(LsSvmOptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction via one cross-kernel matrix + gemv.
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "svm2"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<LsSvm> load(util::BinaryReader& reader);

  [[nodiscard]] const LsSvmOptions& options() const { return options_; }

 private:
  LsSvmOptions options_;
  KernelParams fitted_kernel_;
  linalg::Matrix support_;           ///< All standardized training rows.
  std::vector<double> alphas_;
  double bias_ = 0.0;
  data::Standardizer input_scaler_;
  data::TargetScaler target_scaler_;
  std::size_t num_inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
