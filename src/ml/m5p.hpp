// M5P model tree (paper §III-D): a decision tree with linear regression
// functions at the nodes, after Wang & Witten's M5' as implemented in WEKA.
//
// Growing uses the standard-deviation-reduction (SDR) split criterion and
// stops when a node's target spread falls below a fraction of the root's or
// too few instances remain. Pruning is bottom-up: each inner node fits a
// linear model over the attributes referenced by splits in its subtree, and
// the subtree is replaced by that model when the model's penalty-adjusted
// estimated error is no worse. Prediction smooths the leaf value with the
// node models along the path back to the root:
//   p' = (n·p + k·q) / (n + k)   (k = smoothing constant, default 15).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/model.hpp"
#include "ml/tree_common.hpp"

namespace f2pm::ml {

/// M5P hyperparameters (WEKA defaults where applicable).
struct M5POptions {
  std::size_t min_instances = 4;      ///< WEKA -M 4.
  double sd_fraction = 0.05;          ///< Stop when sd(node) < 5% sd(root).
  bool prune = true;
  bool smoothing = true;
  double smoothing_k = 15.0;
  /// Penalty factor numerator/denominator guard: with n <= v + 1 the
  /// estimated error blows up; this caps the multiplier.
  double max_penalty_factor = 10.0;
  /// Split-search engine (see tree_common.hpp). kPresort is exact and the
  /// default; kHistogram approximates thresholds for large n.
  SplitMode split_mode = SplitMode::kPresort;
  std::size_t histogram_bins = 64;  ///< Bins per feature (kHistogram).
};

/// M5P regression model tree.
class M5P final : public Regressor {
 public:
  explicit M5P(M5POptions options = {});

  void fit(const linalg::Matrix& x, std::span<const double> y) override;
  [[nodiscard]] double predict_row(std::span<const double> row) const override;
  /// Batched prediction: one traversal + smoothing loop over the whole
  /// matrix with a reused path buffer (matches predict_row exactly).
  [[nodiscard]] std::vector<double> predict(
      const linalg::Matrix& x) const override;
  [[nodiscard]] std::string name() const override { return "m5p"; }
  [[nodiscard]] bool is_fitted() const override { return fitted_; }
  [[nodiscard]] std::size_t num_inputs() const override { return num_inputs_; }
  void save(util::BinaryWriter& writer) const override;
  static std::unique_ptr<M5P> load(util::BinaryReader& reader);

  [[nodiscard]] const M5POptions& options() const { return options_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_leaves() const;

 private:
  /// A node carries both the split (if internal) and its linear model,
  /// which doubles as the leaf predictor and the smoothing source.
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = kNoNode;
    std::size_t right = kNoNode;
    std::size_t count = 0;            ///< Training rows that reached it.
    std::vector<double> lm_coeffs;    ///< Full input width; zeros = unused.
    double lm_intercept = 0.0;

    [[nodiscard]] bool is_leaf() const { return left == kNoNode; }
  };

  /// Grows the tree from the engine's root with an explicit work stack
  /// (preorder node ids, no call-stack recursion); returns the root id.
  std::size_t build(TreeGrowthEngine& engine, std::size_t num_features,
                    double root_sd);
  /// Bottom-up pruning; returns {estimated abs error of the kept subtree,
  /// attribute set referenced under the node}.
  double prune_subtree(std::size_t node_id, const linalg::Matrix& x,
                       std::span<const double> y,
                       const std::vector<std::size_t>& rows,
                       std::vector<bool>& attrs_used);
  void fit_linear_model(Node& node, const linalg::Matrix& x,
                        std::span<const double> y,
                        const std::vector<std::size_t>& rows,
                        const std::vector<bool>& attrs);
  [[nodiscard]] double node_predict(const Node& node,
                                    std::span<const double> row) const;

  M5POptions options_;
  std::vector<Node> nodes_;
  std::size_t root_ = kNoNode;
  std::size_t num_inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace f2pm::ml
