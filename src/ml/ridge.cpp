#include "ml/ridge.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/stats.hpp"

namespace f2pm::ml {

RidgeRegression::RidgeRegression(double lambda) : lambda_(lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("RidgeRegression: lambda must be >= 0");
  }
}

void RidgeRegression::fit(const linalg::Matrix& x, std::span<const double> y) {
  check_fit_args(x, y);
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  // Center x and y so the intercept stays unpenalized.
  std::vector<double> x_mean(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) x_mean[c] += row[c];
  }
  for (double& m : x_mean) m /= static_cast<double>(n);
  const double y_mean = linalg::mean(y);

  linalg::Matrix centered(n, p);
  std::vector<double> y_centered(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = x.row(r);
    auto dst = centered.row(r);
    for (std::size_t c = 0; c < p; ++c) dst[c] = src[c] - x_mean[c];
    y_centered[r] = y[r] - y_mean;
  }

  linalg::Matrix gram = linalg::gram(centered);
  for (std::size_t i = 0; i < p; ++i) gram(i, i) += lambda_;
  const auto xty = linalg::gemv_transposed(centered, y_centered);
  coefficients_ = linalg::solve_spd(gram, xty, /*jitter=*/1e-10);

  intercept_ = y_mean;
  for (std::size_t c = 0; c < p; ++c) {
    intercept_ -= coefficients_[c] * x_mean[c];
  }
  fitted_ = true;
}

double RidgeRegression::predict_row(std::span<const double> row) const {
  check_predict_args(row);
  return linalg::dot(row, coefficients_) + intercept_;
}

void RidgeRegression::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("RidgeRegression::save before fit");
  writer.write_double(lambda_);
  writer.write_doubles(coefficients_);
  writer.write_double(intercept_);
}

std::unique_ptr<RidgeRegression> RidgeRegression::load(
    util::BinaryReader& reader) {
  const double lambda = reader.read_double();
  auto model = std::make_unique<RidgeRegression>(lambda);
  model->coefficients_ = reader.read_doubles();
  model->intercept_ = reader.read_double();
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
