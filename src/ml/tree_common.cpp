#include "ml/tree_common.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace f2pm::ml {

double Moments::sd() const {
  if (count < 2) return 0.0;
  const double var = sse() / static_cast<double>(count);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Moments compute_moments(std::span<const double> y,
                        const std::vector<std::size_t>& rows) {
  Moments m;
  for (std::size_t r : rows) m.add(y[r]);
  return m;
}

FeatureBinning compute_feature_binning(const linalg::Matrix& x,
                                       const std::vector<std::size_t>& rows,
                                       std::size_t bins, BinningMode mode) {
  if (bins < 2) {
    throw std::invalid_argument("compute_feature_binning: bins must be >= 2");
  }
  if (bins > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("compute_feature_binning: bins too large");
  }
  FeatureBinning binning;
  binning.bins = bins;
  binning.num_rows = x.rows();
  binning.num_features = x.cols();
  binning.bin_of.assign(x.cols() * x.rows(), 0);
  binning.bin_lo.assign(x.cols() * bins,
                        std::numeric_limits<double>::infinity());
  binning.bin_hi.assign(x.cols() * bins,
                        -std::numeric_limits<double>::infinity());
  const std::size_t n = rows.size();
  if (n == 0) return binning;
  std::vector<double> sorted;
  std::vector<double> edges;
  for (std::size_t f = 0; f < x.cols(); ++f) {
    double lo = std::numeric_limits<double>::infinity();
    double width = 0.0;
    if (mode == BinningMode::kWidth) {
      double hi = -lo;
      for (std::size_t r : rows) {
        lo = std::min(lo, x(r, f));
        hi = std::max(hi, x(r, f));
      }
      width = hi > lo ? (hi - lo) / static_cast<double>(bins) : 0.0;
    } else {
      // Equal-frequency edges: up to bins-1 cut values at the quantile
      // positions of the sorted feature column, deduplicated so equal
      // values always share a bin. Bin of v = number of edges <= v — a
      // monotone map, so bins remain value-disjoint intervals.
      sorted.resize(n);
      for (std::size_t i = 0; i < n; ++i) sorted[i] = x(rows[i], f);
      std::sort(sorted.begin(), sorted.end());
      edges.clear();
      for (std::size_t b = 1; b < bins; ++b) {
        edges.push_back(sorted[(b * n) / bins]);
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
    for (std::size_t r : rows) {
      const double v = x(r, f);
      std::size_t b = 0;
      if (mode == BinningMode::kWidth) {
        if (width > 0.0) {
          b = std::min(bins - 1, static_cast<std::size_t>((v - lo) / width));
        }
      } else {
        b = static_cast<std::size_t>(
            std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
      }
      binning.bin_of[f * x.rows() + r] = static_cast<std::uint16_t>(b);
      double& blo = binning.bin_lo[f * bins + b];
      double& bhi = binning.bin_hi[f * bins + b];
      blo = std::min(blo, v);
      bhi = std::max(bhi, v);
    }
  }
  return binning;
}

void partition_rows(const linalg::Matrix& x,
                    const std::vector<std::size_t>& rows, std::size_t feature,
                    double threshold, std::vector<std::size_t>& left,
                    std::vector<std::size_t>& right) {
  left.clear();
  right.clear();
  for (std::size_t r : rows) {
    if (x(r, feature) <= threshold) {
      left.push_back(r);
    } else {
      right.push_back(r);
    }
  }
}

BestSplit find_best_split(const linalg::Matrix& x, std::span<const double> y,
                          const std::vector<std::size_t>& rows,
                          std::size_t min_leaf, SplitCriterion criterion) {
  BestSplit best;
  if (rows.size() < 2 * min_leaf) return best;
  const Moments total = compute_moments(y, rows);
  if (total.sse() <= 0.0) return best;  // constant target: nothing to gain
  const double total_sd = total.sd();
  const double inv_count = 1.0 / static_cast<double>(total.count);

  // Row order sorted per feature; reused buffer to avoid reallocation. The
  // buffer is re-initialized from `rows` for every feature and the sort is
  // stable, so each feature's tie order (hence the floating-point
  // accumulation order) is pinned to the caller's row order — the presort
  // engine reproduces exactly this order down the tree.
  std::vector<std::size_t> sorted(rows.size());
  for (std::size_t feature = 0; feature < x.cols(); ++feature) {
    std::copy(rows.begin(), rows.end(), sorted.begin());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](std::size_t a, std::size_t b) {
                       return x(a, feature) < x(b, feature);
                     });
    Moments left;
    Moments right = total;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double value = y[sorted[i]];
      left.add(value);
      right.sum -= value;
      right.sum_sq -= value * value;
      --right.count;
      const double v_here = x(sorted[i], feature);
      const double v_next = x(sorted[i + 1], feature);
      if (v_here == v_next) continue;  // not a distinct boundary
      if (left.count < min_leaf || right.count < min_leaf) continue;
      double score = 0.0;
      if (criterion == SplitCriterion::kVarianceReduction) {
        score = total.sse() - (left.sse() + right.sse());
      } else {
        const double weighted_sd =
            (static_cast<double>(left.count) * left.sd() +
             static_cast<double>(right.count) * right.sd()) *
            inv_count;
        score = total_sd - weighted_sd;
      }
      if (score > best.score || !best.found) {
        if (score <= 0.0) continue;
        best.found = true;
        best.feature = feature;
        best.threshold = v_here + (v_next - v_here) / 2.0;
        best.score = score;
      }
    }
  }
  return best;
}

TreeGrowthEngine::TreeGrowthEngine(const linalg::Matrix& x,
                                   std::span<const double> y,
                                   std::vector<std::size_t> rows,
                                   Config config)
    : x_(x), y_(y), config_(config), num_features_(x.cols()),
      rows_(std::move(rows)) {
  if (config_.mode == SplitMode::kHistogram && config_.histogram_bins < 2) {
    throw std::invalid_argument(
        "TreeGrowthEngine: histogram_bins must be >= 2");
  }
  if (config_.histogram_bins > std::numeric_limits<std::uint16_t>::max()) {
    throw std::invalid_argument("TreeGrowthEngine: histogram_bins too large");
  }
  if (x_.rows() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("TreeGrowthEngine: too many rows");
  }
  if (!config_.feature_active.empty() &&
      config_.feature_active.size() != num_features_) {
    throw std::invalid_argument(
        "TreeGrowthEngine: feature_active mask size mismatch");
  }
  const std::size_t n = rows_.size();
  segments_.push_back({0, n, 0, 0, 0});
  mark_.assign(x_.rows(), 0);
  scratch_.resize(n);
  scratch_y_.resize(n);
  yrows_.resize(n);
  for (std::size_t i = 0; i < n; ++i) yrows_[i] = y_[rows_[i]];

  if (config_.mode == SplitMode::kPresort) {
    // One per-feature sort at the root: an LSD radix sort on an
    // order-preserving integer image of the doubles. Radix is stable, so
    // ties keep ascending position — exactly the reference's stable tie
    // order over the caller's row order. Buffers are deliberately left
    // uninitialized (write-before-read by construction): buffer 0 is
    // filled by the sorts below, buffer 1 only ever by a split's
    // partition pass.
    for (int b = 0; b < 2; ++b) {
      order_[b] = std::make_unique_for_overwrite<std::uint32_t[]>(
          num_features_ * n);
      xval_[b] = std::make_unique_for_overwrite<double[]>(num_features_ * n);
      yval_[b] = std::make_unique_for_overwrite<double[]>(num_features_ * n);
    }
    // Monotone bijection double -> uint64: flip all bits of negatives,
    // set the sign bit of non-negatives; unsigned order then matches
    // double order. -0.0 is canonicalized to +0.0 first so the two zeros
    // share a key — the reference comparator also treats them as equal,
    // and no downstream arithmetic distinguishes the zero signs.
    constexpr std::uint64_t kMsb = std::uint64_t{1} << 63;
    auto key_of = [](double v) {
      if (v == 0.0) v = 0.0;  // -0.0 -> +0.0
      const std::uint64_t b = std::bit_cast<std::uint64_t>(v);
      return (b & kMsb) != 0 ? ~b : (b | kMsb);
    };
    auto val_of = [](std::uint64_t k) {
      return std::bit_cast<double>((k & kMsb) != 0 ? (k & ~kMsb) : ~k);
    };
    struct Entry {
      std::uint64_t key;
      std::uint32_t pos;
    };
    // Features are keyed in blocks sharing one sweep of the row-major
    // matrix: a single-feature fill reads 8 useful bytes per cache line,
    // so feeding kFillBlock features' key arrays from the same pass cuts
    // the matrix traffic of the root presort by that factor.
    constexpr std::size_t kFillBlock = 8;
    const std::size_t block_features = std::min(kFillBlock, num_features_);
    auto fill = std::make_unique_for_overwrite<Entry[]>(block_features * n);
    std::vector<std::uint8_t> root_const(num_features_, 0);
    auto sort_feature = [&](std::size_t f, Entry* a) {
      if (n == 0) return;
      auto b = std::make_unique_for_overwrite<Entry[]>(n);
      std::uint32_t* ord = order_[0].get() + f * n;
      double* xv = xval_[0].get() + f * n;
      double* yv = yval_[0].get() + f * n;
      // All eight digit histograms in one read; a pass whose histogram
      // puts every element in one bucket is the identity and is skipped
      // (for similar-magnitude data the high exponent bytes usually are).
      std::array<std::array<std::uint32_t, 256>, 8> counts{};
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t k = a[i].key;
        for (std::size_t p = 0; p < 8; ++p) {
          ++counts[p][(k >> (8 * p)) & 255];
        }
      }
      bool constant = true;
      for (std::size_t p = 0; p < 8 && constant; ++p) {
        constant = counts[p][(a[0].key >> (8 * p)) & 255] == n;
      }
      if (constant) {
        // Constant feature: already "sorted" (all keys equal); record it
        // so the root scan and every partition skip it from the start.
        root_const[f] = 1;
      }
      Entry* src = a;
      Entry* dst = b.get();
      for (std::size_t p = 0; p < 8; ++p) {
        const auto& count = counts[p];
        const std::size_t shift = 8 * p;
        if (count[(src[0].key >> shift) & 255] == n) continue;
        std::array<std::uint32_t, 256> offs;
        std::uint32_t running = 0;
        for (std::size_t d = 0; d < 256; ++d) {
          offs[d] = running;
          running += count[d];
        }
        for (std::size_t i = 0; i < n; ++i) {
          dst[offs[(src[i].key >> shift) & 255]++] = src[i];
        }
        std::swap(src, dst);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const Entry e = src[i];
        ord[i] = static_cast<std::uint32_t>(rows_[e.pos]);
        xv[i] = val_of(e.key);
        yv[i] = yrows_[e.pos];
      }
    };
    auto& pool = parallel::ThreadPool::global();
    const bool par = config_.allow_parallel && pool.num_threads() > 1 &&
                     n * num_features_ >= config_.parallel_min_work;
    for (std::size_t base = 0; base < num_features_; base += kFillBlock) {
      const std::size_t nf = std::min(kFillBlock, num_features_ - base);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = rows_[i];
        for (std::size_t j = 0; j < nf; ++j) {
          fill[j * n + i] = {key_of(x_(r, base + j)),
                            static_cast<std::uint32_t>(i)};
        }
      }
      auto run = [&](std::size_t j) {
        sort_feature(base + j, fill.get() + j * n);
      };
      if (par) {
        parallel::parallel_for(pool, 0, nf, run);
      } else {
        for (std::size_t j = 0; j < nf; ++j) run(j);
      }
    }
    for (std::size_t f = 0; f < num_features_ && f < 64; ++f) {
      if (root_const[f] != 0) segments_[0].const_mask |= std::uint64_t{1} << f;
    }
  } else if (config_.mode == SplitMode::kHistogram) {
    if (config_.binning != nullptr) {
      if (config_.binning->num_rows != x_.rows() ||
          config_.binning->num_features != num_features_ ||
          config_.binning->bins != config_.histogram_bins) {
        throw std::invalid_argument(
            "TreeGrowthEngine: precomputed binning does not match the "
            "matrix/bin configuration");
      }
      binning_ = config_.binning;
    } else {
      binning_ = std::make_shared<const FeatureBinning>(compute_feature_binning(
          x_, rows_, config_.histogram_bins, BinningMode::kWidth));
    }
    hists_.resize(1);
  }
}

std::span<const std::size_t> TreeGrowthEngine::rows(NodeId id) const {
  const Segment& s = segments_[id];
  return {rows_.data() + s.begin, s.end - s.begin};
}

std::size_t TreeGrowthEngine::node_size(NodeId id) const {
  const Segment& s = segments_[id];
  return s.end - s.begin;
}

Moments TreeGrowthEngine::moments(NodeId id) const {
  // yrows_ is maintained in rows_ order, so this streams the same value
  // sequence compute_moments(y, rows(id)) would gather — bit-identical
  // sums with contiguous access.
  const Segment& s = segments_[id];
  Moments m;
  const double* yr = yrows_.data();
  for (std::size_t i = s.begin; i < s.end; ++i) m.add(yr[i]);
  return m;
}

std::span<const std::uint32_t> TreeGrowthEngine::order_slice(
    std::size_t feature, const Segment& segment) const {
  return {order_[buf_of(feature, segment)].get() + feature * rows_.size() +
              segment.begin,
          segment.end - segment.begin};
}

std::span<const double> TreeGrowthEngine::xval_slice(
    std::size_t feature, const Segment& segment) const {
  return {xval_[buf_of(feature, segment)].get() + feature * rows_.size() +
              segment.begin,
          segment.end - segment.begin};
}

std::span<const double> TreeGrowthEngine::yval_slice(
    std::size_t feature, const Segment& segment) const {
  return {yval_[buf_of(feature, segment)].get() + feature * rows_.size() +
              segment.begin,
          segment.end - segment.begin};
}

BestSplit TreeGrowthEngine::scan_feature_presorted(
    std::size_t feature, const Segment& segment, const Moments& total,
    std::size_t min_leaf, SplitCriterion criterion) const {
  // Exact replica of the reference scan over one feature: same traversal
  // order, same accumulation order, same accept rule — the only difference
  // is that the sorted order comes from the maintained presort instead of
  // a fresh stable sort, and the x/y values stream from the contiguous
  // per-feature arrays instead of being gathered row by row.
  // total.sse() is loop-invariant (one division) — hoisted by hand since
  // the hot loop is division-bound.
  const double total_sse = total.sse();
  const double total_sd = total.sd();
  const double inv_count = 1.0 / static_cast<double>(total.count);
  const std::span<const double> xv = xval_slice(feature, segment);
  const std::span<const double> yv = yval_slice(feature, segment);
  BestSplit best;
  Moments left;
  Moments right = total;
  for (std::size_t i = 0; i + 1 < xv.size(); ++i) {
    const double value = yv[i];
    left.add(value);
    right.sum -= value;
    right.sum_sq -= value * value;
    --right.count;
    const double v_here = xv[i];
    const double v_next = xv[i + 1];
    if (v_here == v_next) continue;
    if (left.count < min_leaf || right.count < min_leaf) continue;
    double score = 0.0;
    if (criterion == SplitCriterion::kVarianceReduction) {
      score = total_sse - (left.sse() + right.sse());
    } else {
      const double weighted_sd =
          (static_cast<double>(left.count) * left.sd() +
           static_cast<double>(right.count) * right.sd()) *
          inv_count;
      score = total_sd - weighted_sd;
    }
    if (score > best.score || !best.found) {
      if (score <= 0.0) continue;
      best.found = true;
      best.feature = feature;
      best.threshold = v_here + (v_next - v_here) / 2.0;
      best.score = score;
    }
  }
  return best;
}

BestSplit TreeGrowthEngine::scan_feature_histogram(
    std::size_t feature, std::span<const double> hist, const Moments& total,
    std::size_t min_leaf, SplitCriterion criterion) const {
  const std::size_t bins = config_.histogram_bins;
  const double total_sd = total.sd();
  const double inv_count = 1.0 / static_cast<double>(total.count);
  const double* h = hist.data() + feature * bins * 3;
  const double* lo = binning_->bin_lo.data() + feature * bins;
  const double* hi = binning_->bin_hi.data() + feature * bins;
  BestSplit best;
  Moments left;
  Moments right = total;
  std::size_t prev = bins;  // last non-empty bin accumulated into `left`
  for (std::size_t b = 0; b < bins; ++b) {
    const double count_b = h[b * 3 + 2];
    if (count_b <= 0.0) continue;
    // Candidate boundary between the previous non-empty bin and this one.
    // The threshold midpoints the root-level value bounds of the two bins,
    // so partitioning by `value <= threshold` agrees exactly with the
    // histogram counts for every training row.
    if (prev != bins && left.count >= min_leaf && right.count >= min_leaf) {
      double score = 0.0;
      if (criterion == SplitCriterion::kVarianceReduction) {
        score = total.sse() - (left.sse() + right.sse());
      } else {
        const double weighted_sd =
            (static_cast<double>(left.count) * left.sd() +
             static_cast<double>(right.count) * right.sd()) *
            inv_count;
        score = total_sd - weighted_sd;
      }
      if (score > 0.0 && (score > best.score || !best.found)) {
        best.found = true;
        best.feature = feature;
        best.threshold = hi[prev] + (lo[b] - hi[prev]) / 2.0;
        best.score = score;
      }
    }
    left.sum += h[b * 3];
    left.sum_sq += h[b * 3 + 1];
    left.count += static_cast<std::size_t>(count_b);
    right.sum -= h[b * 3];
    right.sum_sq -= h[b * 3 + 1];
    right.count -= static_cast<std::size_t>(count_b);
    prev = b;
  }
  return best;
}

void TreeGrowthEngine::accumulate_histogram(const Segment& segment,
                                            std::span<double> hist) const {
  const std::size_t bins = config_.histogram_bins;
  const std::uint16_t* bin_of = binning_->bin_of.data();
  for (std::size_t i = segment.begin; i < segment.end; ++i) {
    const std::size_t r = rows_[i];
    const double v = yrows_[i];
    for (std::size_t f = 0; f < num_features_; ++f) {
      if (!feature_enabled(f)) continue;
      const std::size_t b = bin_of[f * x_.rows() + r];
      double* cell = hist.data() + (f * bins + b) * 3;
      cell[0] += v;
      cell[1] += v * v;
      cell[2] += 1.0;
    }
  }
}

void TreeGrowthEngine::build_histogram(NodeId id) {
  if (!hists_[id].empty()) return;
  hists_[id].assign(num_features_ * config_.histogram_bins * 3, 0.0);
  accumulate_histogram(segments_[id], hists_[id]);
}

BestSplit TreeGrowthEngine::find_best_split(NodeId id, std::size_t min_leaf,
                                            SplitCriterion criterion,
                                            const Moments* total_hint) {
  const Segment segment = segments_[id];
  const std::size_t len = segment.end - segment.begin;
  BestSplit best;
  if (len < 2 * min_leaf) return best;

  if (config_.mode == SplitMode::kNaive) {
    const std::vector<std::size_t> node_rows(rows_.begin() + segment.begin,
                                             rows_.begin() + segment.end);
    return ml::find_best_split(x_, y_, node_rows, min_leaf, criterion);
  }

  // Total accumulated in rows(id) order — identical to the reference's
  // compute_moments over the node rows. Tree builders compute the node
  // moments anyway (for the leaf value), so they pass them in.
  const Moments total = total_hint != nullptr ? *total_hint : moments(id);
  if (total.sse() <= 0.0) return best;

  if (config_.mode == SplitMode::kHistogram) {
    build_histogram(id);
    for (std::size_t f = 0; f < num_features_; ++f) {
      if (!feature_enabled(f)) continue;
      const BestSplit cand =
          scan_feature_histogram(f, hists_[id], total, min_leaf, criterion);
      if (cand.found && (!best.found || cand.score > best.score)) best = cand;
    }
    return best;
  }

  // Presort mode. A feature whose sorted slice starts and ends with the
  // same value is constant within the node: it has no candidate boundary,
  // so skipping its scan is exact — and since constancy is inherited, the
  // mask also lets apply_split stop partitioning the feature's slices for
  // the whole subtree. (Only features < 64 fit the mask; the rest are
  // simply always scanned.)
  std::vector<std::size_t> active;
  active.reserve(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) {
    if (!feature_enabled(f)) continue;
    if (f < 64 && (segments_[id].const_mask >> f) & 1) continue;
    const std::span<const double> xv = xval_slice(f, segment);
    if (xv.front() == xv.back()) {
      if (f < 64) segments_[id].const_mask |= std::uint64_t{1} << f;
      continue;
    }
    active.push_back(f);
  }

  // Per-feature scans are independent and self-contained, so they may fan
  // out on the pool; the reduction below always runs in feature order,
  // which makes the result — including tie resolution — bitwise
  // independent of the thread count. Reducing per-feature local bests
  // with "strictly greater wins" is equivalent to the reference's single
  // carried-best loop: within a feature the first occurrence of the
  // feature maximum is recorded either way.
  auto& pool = parallel::ThreadPool::global();
  const bool parallel = config_.allow_parallel && pool.num_threads() > 1 &&
                        len * active.size() >= config_.parallel_min_work;
  std::vector<BestSplit> per_feature(active.size());
  auto scan = [&](std::size_t i) {
    per_feature[i] =
        scan_feature_presorted(active[i], segment, total, min_leaf, criterion);
  };
  if (parallel) {
    parallel::parallel_for(pool, 0, active.size(), scan);
  } else {
    for (std::size_t i = 0; i < active.size(); ++i) scan(i);
  }
  for (const BestSplit& cand : per_feature) {
    if (cand.found && (!best.found || cand.score > best.score)) best = cand;
  }
  return best;
}

std::pair<TreeGrowthEngine::NodeId, TreeGrowthEngine::NodeId>
TreeGrowthEngine::apply_split(NodeId id, const BestSplit& split) {
  const Segment segment = segments_[id];
  const bool presort = config_.mode == SplitMode::kPresort;

  // Mark left membership once, then stable-partition the original-order
  // array and every per-feature slice against the marks. In presort mode
  // the split feature's slice is already sorted, so the left set is a
  // prefix: a binary search finds it without touching the matrix, and
  // only the left rows need marking.
  std::size_t num_left = 0;
  if (presort) {
    const std::span<const double> xv = xval_slice(split.feature, segment);
    num_left = static_cast<std::size_t>(
        std::upper_bound(xv.begin(), xv.end(), split.threshold) - xv.begin());
    const std::span<const std::uint32_t> ord =
        order_slice(split.feature, segment);
    for (std::size_t i = 0; i < num_left; ++i) mark_[ord[i]] = 1;
  } else {
    for (std::size_t i = segment.begin; i < segment.end; ++i) {
      const std::size_t r = rows_[i];
      const bool left = x_(r, split.feature) <= split.threshold;
      mark_[r] = left ? 1 : 0;
      num_left += left ? 1 : 0;
    }
  }

  // rows_ and yrows_ partition in place (stable, spill buffers for the
  // right side). Branchless select of the output cursor — the marks are
  // effectively random, so a conditional branch here would mispredict on
  // every other element.
  {
    std::size_t out = segment.begin;
    std::size_t spill = 0;
    for (std::size_t i = segment.begin; i < segment.end; ++i) {
      const std::size_t r = rows_[i];
      const std::size_t m = mark_[r];
      std::size_t* rdst = m != 0 ? rows_.data() + out : scratch_.data() + spill;
      double* ydst = m != 0 ? yrows_.data() + out : scratch_y_.data() + spill;
      *rdst = r;
      *ydst = yrows_[i];
      out += m;
      spill += 1 - m;
    }
    std::copy(scratch_.begin(),
              scratch_.begin() + static_cast<std::ptrdiff_t>(spill),
              rows_.begin() + static_cast<std::ptrdiff_t>(out));
    std::copy(scratch_y_.begin(),
              scratch_y_.begin() + static_cast<std::ptrdiff_t>(spill),
              yrows_.begin() + static_cast<std::ptrdiff_t>(out));
  }

  std::uint64_t child_mask = segment.buf_mask;
  std::uint8_t child_hi = segment.buf_hi;
  const std::size_t num_right = segment.end - segment.begin - num_left;
  // When neither child can ever be scanned again (both below the caller's
  // split-size floor), their slices are never read — skip the whole
  // maintenance pass and leave the parities unchanged (stale slices are
  // unreachable: find_best_split rejects such nodes before touching them).
  const bool maintain_slices = num_left >= config_.min_split_size ||
                               num_right >= config_.min_split_size;
  if (presort && maintain_slices) {
    // Single forward pass per feature from its current buffer into the
    // other: left rows stream to [begin, begin+num_left), right rows to
    // [begin+num_left, end), both in encounter order — a stable partition
    // with no spill and no copy-back. Two features need no pass at all:
    // constants (their stale slices are never read again, descendants
    // inherit the mask) and the split feature itself, whose sorted slice
    // is already partitioned — its left child is exactly the prefix.
    const std::size_t n = rows_.size();
    for (std::size_t f = 0; f < num_features_; ++f) {
      if (f < 64) {
        if ((segment.const_mask >> f) & 1) continue;
        if (f == split.feature) continue;
        child_mask ^= std::uint64_t{1} << f;
      }
      const std::size_t src = buf_of(f, segment);
      const std::size_t base = f * n;
      const std::uint32_t* so = order_[src].get() + base;
      const double* sx = xval_[src].get() + base;
      const double* sy = yval_[src].get() + base;
      std::uint32_t* to = order_[1 - src].get() + base;
      double* tx = xval_[1 - src].get() + base;
      double* ty = yval_[1 - src].get() + base;
      std::size_t left_out = segment.begin;
      std::size_t right_out = segment.begin + num_left;
      for (std::size_t i = segment.begin; i < segment.end; ++i) {
        const std::uint32_t r = so[i];
        const std::size_t m = mark_[r];
        // Branchless cursor select: the marks are effectively random, so
        // a branch would mispredict on every other element.
        const std::size_t out = m != 0 ? left_out : right_out;
        to[out] = r;
        tx[out] = sx[i];
        ty[out] = sy[i];
        left_out += m;
        right_out += 1 - m;
      }
    }
    // Features >= 64 share one parity bit, so all of them are always
    // partitioned (including the split feature when it lands there).
    if (num_features_ > 64) child_hi = 1 - child_hi;
  }
  // Only left rows ever carry a set mark, and after the rows_ partition
  // they are exactly the prefix — clear just those.
  for (std::size_t i = segment.begin; i < segment.begin + num_left; ++i) {
    mark_[rows_[i]] = 0;
  }

  const NodeId left_id = segments_.size();
  segments_.push_back({segment.begin, segment.begin + num_left, child_mask,
                       child_hi, segment.const_mask});
  const NodeId right_id = segments_.size();
  segments_.push_back({segment.begin + num_left, segment.end, child_mask,
                       child_hi, segment.const_mask});

  if (config_.mode == SplitMode::kHistogram) {
    hists_.resize(segments_.size());
    // Sibling subtraction: build the smaller child by iteration, derive
    // the larger one from the parent.
    build_histogram(id);  // normally already present from find_best_split
    const NodeId small = num_left <= num_right ? left_id : right_id;
    const NodeId large = small == left_id ? right_id : left_id;
    hists_[small].assign(hists_[id].size(), 0.0);
    accumulate_histogram(segments_[small], hists_[small]);
    hists_[large] = std::move(hists_[id]);
    std::vector<double>& large_hist = hists_[large];
    const std::vector<double>& small_hist = hists_[small];
    for (std::size_t i = 0; i < large_hist.size(); ++i) {
      large_hist[i] -= small_hist[i];
    }
    hists_[id].clear();
    hists_[id].shrink_to_fit();
  }
  return {left_id, right_id};
}

void TreeGrowthEngine::release(NodeId id) {
  if (config_.mode != SplitMode::kHistogram) return;
  hists_[id].clear();
  hists_[id].shrink_to_fit();
}

}  // namespace f2pm::ml
