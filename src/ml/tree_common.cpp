#include "ml/tree_common.hpp"

#include <algorithm>
#include <cmath>

namespace f2pm::ml {

double Moments::sd() const {
  if (count < 2) return 0.0;
  const double var = sse() / static_cast<double>(count);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Moments compute_moments(std::span<const double> y,
                        const std::vector<std::size_t>& rows) {
  Moments m;
  for (std::size_t r : rows) m.add(y[r]);
  return m;
}

void partition_rows(const linalg::Matrix& x,
                    const std::vector<std::size_t>& rows, std::size_t feature,
                    double threshold, std::vector<std::size_t>& left,
                    std::vector<std::size_t>& right) {
  left.clear();
  right.clear();
  for (std::size_t r : rows) {
    if (x(r, feature) <= threshold) {
      left.push_back(r);
    } else {
      right.push_back(r);
    }
  }
}

BestSplit find_best_split(const linalg::Matrix& x, std::span<const double> y,
                          const std::vector<std::size_t>& rows,
                          std::size_t min_leaf, SplitCriterion criterion) {
  BestSplit best;
  if (rows.size() < 2 * min_leaf) return best;
  const Moments total = compute_moments(y, rows);
  if (total.sse() <= 0.0) return best;  // constant target: nothing to gain
  const double total_sd = total.sd();
  const double inv_count = 1.0 / static_cast<double>(total.count);

  // Row order sorted per feature; reused buffer to avoid reallocation.
  std::vector<std::size_t> sorted(rows);
  for (std::size_t feature = 0; feature < x.cols(); ++feature) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return x(a, feature) < x(b, feature);
              });
    Moments left;
    Moments right = total;
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double value = y[sorted[i]];
      left.add(value);
      right.sum -= value;
      right.sum_sq -= value * value;
      --right.count;
      const double v_here = x(sorted[i], feature);
      const double v_next = x(sorted[i + 1], feature);
      if (v_here == v_next) continue;  // not a distinct boundary
      if (left.count < min_leaf || right.count < min_leaf) continue;
      double score = 0.0;
      if (criterion == SplitCriterion::kVarianceReduction) {
        score = total.sse() - (left.sse() + right.sse());
      } else {
        const double weighted_sd =
            (static_cast<double>(left.count) * left.sd() +
             static_cast<double>(right.count) * right.sd()) *
            inv_count;
        score = total_sd - weighted_sd;
      }
      if (score > best.score || !best.found) {
        if (score <= 0.0) continue;
        best.found = true;
        best.feature = feature;
        best.threshold = v_here + (v_next - v_here) / 2.0;
        best.score = score;
      }
    }
  }
  return best;
}

}  // namespace f2pm::ml
