// The regressor interface every F2PM prediction method implements
// (paper §III-D). A model maps a vector of system-feature inputs to a
// predicted Remaining Time To Failure in seconds.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/serialization.hpp"

namespace f2pm::ml {

/// Abstract RTTF regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on a design matrix (one row per aggregated datapoint) and RTTF
  /// targets. Throws std::invalid_argument on shape mismatch or an empty
  /// training set. May be called again to retrain from scratch.
  virtual void fit(const linalg::Matrix& x, std::span<const double> y) = 0;

  /// Predicts one row. Requires is_fitted() and a row of the training
  /// width.
  [[nodiscard]] virtual double predict_row(
      std::span<const double> row) const = 0;

  /// Batch prediction; the default loops predict_row.
  [[nodiscard]] virtual std::vector<double> predict(
      const linalg::Matrix& x) const;

  /// Short stable identifier ("linear", "reptree", ...). Used in reports
  /// and as the serialization tag.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual bool is_fitted() const = 0;

  /// Number of input columns the fitted model expects.
  [[nodiscard]] virtual std::size_t num_inputs() const = 0;

  /// Serializes the fitted model. Throws std::logic_error when unfitted.
  virtual void save(util::BinaryWriter& writer) const = 0;

 protected:
  /// Shared argument validation for fit() implementations.
  static void check_fit_args(const linalg::Matrix& x,
                             std::span<const double> y);
  /// Shared argument validation for predict_row() implementations.
  void check_predict_args(std::span<const double> row) const;
};

/// Writes `model` (with its name tag) to a stream.
void save_model(const Regressor& model, std::ostream& out);

/// Reads back any model written by save_model. Dispatches on the name tag;
/// throws std::runtime_error for unknown tags or corrupt archives.
std::unique_ptr<Regressor> load_model(std::istream& in);

}  // namespace f2pm::ml
