#include "ml/cascade.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "ml/lasso.hpp"
#include "ml/registry.hpp"
#include "obs/metrics.hpp"

namespace f2pm::ml {

namespace {

/// Registry handles are resolved once; updates are lock-free after that.
struct CascadeMetrics {
  obs::Counter& screened;
  obs::Counter& promoted;
  obs::Histogram& screen_seconds;
  obs::Histogram& full_seconds;

  static CascadeMetrics& get() {
    auto& registry = obs::Registry::global();
    static CascadeMetrics metrics{
        registry.counter("f2pm_ml_cascade_screened_total",
                         "Rows scored by the cascade screen stage."),
        registry.counter("f2pm_ml_cascade_promoted_total",
                         "Rows promoted to the cascade full model."),
        registry.histogram("f2pm_ml_cascade_screen_seconds",
                           "Screen-stage prediction latency (per call: one "
                           "row or one batch).",
                           obs::Histogram::default_latency_bounds()),
        registry.histogram("f2pm_ml_cascade_full_seconds",
                           "Full-stage prediction latency over the promoted "
                           "subset (per call).",
                           obs::Histogram::default_latency_bounds())};
    return metrics;
  }
};

/// Nearest-rank quantile of an unsorted sample; 0 when empty.
double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

CascadeRegressor::CascadeRegressor(std::unique_ptr<Regressor> screen,
                                   std::unique_ptr<Regressor> full,
                                   CascadeOptions options)
    : options_(std::move(options)),
      screen_(std::move(screen)),
      full_(std::move(full)) {
  if (!screen_ || !full_) {
    throw std::invalid_argument(
        "CascadeRegressor: both stages must be non-null");
  }
  if (!(options_.horizon_seconds >= 0.0)) {
    throw std::invalid_argument(
        "CascadeRegressor: horizon_seconds must be >= 0");
  }
  if (!(options_.band_quantile >= 0.0) || options_.band_quantile > 1.0) {
    throw std::invalid_argument(
        "CascadeRegressor: band_quantile must be in [0, 1]");
  }
}

void CascadeRegressor::fit(const linalg::Matrix& x,
                           std::span<const double> y) {
  check_fit_args(x, y);
  fitted_ = false;
  num_inputs_ = x.cols();

  // Resolve the screen-stage column subset: explicit subset, else a Lasso
  // selection at the configured λ, else the full row. An empty selection
  // (the Lasso zeroed every coefficient) also falls back to the full row —
  // a zero-column screen cannot be fitted.
  screen_columns_ = options_.screen_columns;
  if (screen_columns_.empty() && options_.screen_lasso_lambda > 0.0) {
    LassoOptions selector_options;
    selector_options.lambda = options_.screen_lasso_lambda;
    Lasso selector(selector_options);
    selector.fit(x, y);
    screen_columns_ = selector.selected_features();
  }
  for (const std::size_t column : screen_columns_) {
    if (column >= x.cols()) {
      throw std::invalid_argument(
          "CascadeRegressor: screen column out of range");
    }
  }
  if (screen_columns_.size() == x.cols()) screen_columns_.clear();

  // Both stages refit from the same corpus.
  const linalg::Matrix x_screen_subset =
      screen_columns_.empty() ? linalg::Matrix()
                              : x.select_columns(screen_columns_);
  const linalg::Matrix& x_screen =
      screen_columns_.empty() ? x : x_screen_subset;
  screen_->fit(x_screen, y);
  full_->fit(x, y);

  // Calibrate the disagreement band on the rows the full model itself
  // places in the near-failure region: the margin must absorb how much the
  // screen can overestimate RTTF there, or a window the full model would
  // flag could slip past the screen unpromoted.
  const std::vector<double> screen_pred = screen_->predict(x_screen);
  const std::vector<double> full_pred = full_->predict(x);
  std::vector<double> overestimates;
  for (std::size_t i = 0; i < full_pred.size(); ++i) {
    if (full_pred[i] < options_.horizon_seconds) {
      overestimates.push_back(screen_pred[i] - full_pred[i]);
    }
  }
  margin_ = std::max(0.0, quantile(std::move(overestimates),
                                   options_.band_quantile));
  fitted_ = true;
}

std::span<const double> CascadeRegressor::screen_row(
    std::span<const double> row) const {
  // Per-thread gather scratch: screening runs on every window of every
  // session (the serve hot path), and a fitted cascade is shared const
  // across scoring threads, so the scratch is thread-local rather than a
  // member. Capacity is paid once per thread, then reused forever.
  static thread_local std::vector<double> subset;
  subset.clear();
  subset.reserve(screen_columns_.size());
  for (const std::size_t column : screen_columns_) {
    subset.push_back(row[column]);
  }
  return subset;
}

CascadeRegressor::TracedPrediction CascadeRegressor::predict_row_traced(
    std::span<const double> row) const {
  check_predict_args(row);
  CascadeMetrics& metrics = CascadeMetrics::get();
  TracedPrediction traced;
  {
    obs::ScopedTimer timer(metrics.screen_seconds);
    traced.screen_rttf = screen_columns_.empty()
                             ? screen_->predict_row(row)
                             : screen_->predict_row(screen_row(row));
  }
  metrics.screened.add(1);
  traced.promoted = traced.screen_rttf < promote_threshold();
  if (traced.promoted) {
    obs::ScopedTimer timer(metrics.full_seconds);
    traced.rttf = full_->predict_row(row);
    metrics.promoted.add(1);
  } else {
    traced.rttf = traced.screen_rttf;
  }
  return traced;
}

double CascadeRegressor::predict_row(std::span<const double> row) const {
  return predict_row_traced(row).rttf;
}

std::vector<double> CascadeRegressor::predict_traced(
    const linalg::Matrix& x, std::vector<std::uint8_t>* promoted_out) const {
  if (!fitted_) throw std::logic_error("Regressor: predict before fit");
  if (x.cols() != num_inputs_) {
    throw std::invalid_argument("Regressor: input width mismatch");
  }
  CascadeMetrics& metrics = CascadeMetrics::get();
  std::vector<double> out;
  {
    obs::ScopedTimer timer(metrics.screen_seconds);
    out = screen_columns_.empty()
              ? screen_->predict(x)
              : screen_->predict(x.select_columns(screen_columns_));
  }
  metrics.screened.add(static_cast<std::uint64_t>(x.rows()));

  std::vector<std::size_t> promoted_rows;
  const double threshold = promote_threshold();
  for (std::size_t r = 0; r < out.size(); ++r) {
    if (out[r] < threshold) promoted_rows.push_back(r);
  }
  if (promoted_out) {
    promoted_out->assign(x.rows(), 0);
    for (const std::size_t r : promoted_rows) (*promoted_out)[r] = 1;
  }
  if (!promoted_rows.empty()) {
    obs::ScopedTimer timer(metrics.full_seconds);
    const std::vector<double> refined =
        full_->predict(x.select_rows(promoted_rows));
    for (std::size_t i = 0; i < promoted_rows.size(); ++i) {
      out[promoted_rows[i]] = refined[i];
    }
    metrics.promoted.add(static_cast<std::uint64_t>(promoted_rows.size()));
  }
  return out;
}

std::vector<double> CascadeRegressor::predict(const linalg::Matrix& x) const {
  return predict_traced(x, nullptr);
}

void CascadeRegressor::save(util::BinaryWriter& writer) const {
  if (!fitted_) throw std::logic_error("CascadeRegressor::save before fit");
  writer.write_u64(num_inputs_);
  writer.write_double(options_.horizon_seconds);
  writer.write_double(options_.band_quantile);
  writer.write_double(options_.screen_lasso_lambda);
  writer.write_double(margin_);
  std::vector<std::uint64_t> columns(screen_columns_.begin(),
                                     screen_columns_.end());
  writer.write_u64s(columns);
  // Sub-models serialize inline with their registry tag, the BaggedTrees
  // idiom: no nested archive header.
  writer.write_string(screen_->name());
  screen_->save(writer);
  writer.write_string(full_->name());
  full_->save(writer);
}

std::unique_ptr<CascadeRegressor> CascadeRegressor::load(
    util::BinaryReader& reader) {
  std::unique_ptr<CascadeRegressor> model(new CascadeRegressor());
  model->num_inputs_ = reader.read_u64();
  model->options_.horizon_seconds = reader.read_double();
  model->options_.band_quantile = reader.read_double();
  model->options_.screen_lasso_lambda = reader.read_double();
  model->margin_ = reader.read_double();
  const std::vector<std::uint64_t> columns = reader.read_u64s();
  model->screen_columns_.assign(columns.begin(), columns.end());
  model->screen_ = load_model_body(reader.read_string(), reader);
  model->full_ = load_model_body(reader.read_string(), reader);
  if (model->full_->num_inputs() != model->num_inputs_) {
    throw std::runtime_error(
        "CascadeRegressor::load: full-model width mismatch");
  }
  model->fitted_ = true;
  return model;
}

}  // namespace f2pm::ml
